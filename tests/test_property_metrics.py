"""Property-based tests (hypothesis) for the ranking metrics and consensus theorems."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro import ProbabilisticRelation, Tuple
from repro.baselines import expected_symmetric_difference, pt_topk
from repro.core.possible_worlds import enumerate_worlds
from repro.metrics import (
    kendall_topk_distance,
    kendall_topk_distance_reference,
    set_overlap,
)


@st.composite
def two_topk_lists(draw, universe_size=12, k_max=6):
    universe = [f"item{i}" for i in range(universe_size)]
    k = draw(st.integers(min_value=1, max_value=k_max))
    first = draw(st.permutations(universe))[:k]
    second = draw(st.permutations(universe))[:k]
    return list(first), list(second), k


@settings(max_examples=100, deadline=None)
@given(two_topk_lists())
def test_kendall_distance_is_bounded_and_symmetric(data):
    first, second, k = data
    distance = kendall_topk_distance(first, second, k=k)
    assert 0.0 <= distance <= 1.0
    assert distance == kendall_topk_distance(second, first, k=k)


@settings(max_examples=100, deadline=None)
@given(two_topk_lists())
def test_vectorized_kendall_matches_case_based_reference(data):
    first, second, k = data
    fast = kendall_topk_distance(first, second, k=k)
    reference = kendall_topk_distance_reference(first, second, k=k)
    assert fast == pytest.approx(reference, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(two_topk_lists())
def test_kendall_identity_of_indiscernibles(data):
    first, _, k = data
    assert kendall_topk_distance(first, first, k=k) == 0.0


@settings(max_examples=100, deadline=None)
@given(two_topk_lists())
def test_kendall_overlap_bound(data):
    """Distance delta implies the lists share at least a 1 - sqrt(delta) fraction."""
    first, second, k = data
    delta = kendall_topk_distance(first, second, k=k)
    assert set_overlap(first, second, k=k) >= 1 - delta ** 0.5 - 1e-9


@settings(max_examples=100, deadline=None)
@given(two_topk_lists())
def test_disjoint_lists_have_distance_one(data):
    first, second, k = data
    disjoint_second = [f"other{i}" for i in range(k)]
    assert kendall_topk_distance(first, disjoint_second, k=k) == 1.0


@st.composite
def small_relations(draw):
    size = draw(st.integers(min_value=2, max_value=6))
    probabilities = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=0.95),
            min_size=size,
            max_size=size,
        )
    )
    tuples = [Tuple(f"t{i}", float(size - i), probabilities[i]) for i in range(size)]
    return ProbabilisticRelation(tuples)


@settings(max_examples=25, deadline=None)
@given(small_relations(), st.integers(min_value=1, max_value=3))
def test_pt_topk_is_consensus_answer(relation, k):
    """Theorem 2 as a property: no candidate set beats PT(k) on expected symmetric difference."""
    k = min(k, len(relation))
    worlds = enumerate_worlds(relation)
    answer = pt_topk(relation, k, h=k)
    best = expected_symmetric_difference(worlds, answer, k)
    for candidate in itertools.combinations([t.tid for t in relation], k):
        assert best <= expected_symmetric_difference(worlds, candidate, k) + 1e-9
