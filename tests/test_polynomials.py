"""Tests for the polynomial-expansion toolbox (Appendix B)."""

import numpy as np
import pytest

from repro.algorithms.polynomials import (
    PolynomialExpression,
    evaluate,
    expand_expression,
    multiply,
    multiply_fft,
    multiply_naive,
    product_divide_and_conquer,
    product_naive,
    trim,
)


class TestBasicOperations:
    def test_trim_removes_trailing_zeros(self):
        assert trim(np.array([1.0, 2.0, 0.0, 0.0])).tolist() == [1.0, 2.0]

    def test_trim_all_zero(self):
        assert trim(np.array([0.0, 0.0])).tolist() == [0.0]

    def test_trim_empty(self):
        assert trim(np.array([])).tolist() == [0.0]

    def test_multiply_naive_known_product(self):
        # (1 + x)(2 + 3x) = 2 + 5x + 3x^2
        assert multiply_naive([1, 1], [2, 3]).tolist() == [2, 5, 3]

    def test_multiply_fft_matches_naive(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=40)
        b = rng.normal(size=70)
        assert np.allclose(multiply_fft(a, b), multiply_naive(a, b))

    def test_multiply_fft_complex(self):
        a = np.array([1 + 1j, 2])
        b = np.array([0.5, -1j])
        assert np.allclose(multiply_fft(a, b), np.convolve(a, b))

    def test_multiply_dispatch(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=100)
        b = rng.normal(size=3)
        assert np.allclose(multiply(a, b), np.convolve(a, b))

    def test_evaluate_horner(self):
        # 1 + 2x + 3x^2 at x = 2 -> 17
        assert evaluate(np.array([1.0, 2.0, 3.0]), 2.0) == pytest.approx(17.0)


class TestProducts:
    def test_product_naive_and_dc_agree(self):
        rng = np.random.default_rng(3)
        polys = [rng.normal(size=rng.integers(1, 6)) for _ in range(12)]
        assert np.allclose(product_naive(polys), product_divide_and_conquer(polys), atol=1e-8)

    def test_product_of_bernoulli_factors_is_distribution(self):
        probabilities = [0.2, 0.5, 0.9, 0.4]
        polys = [np.array([1 - p, p]) for p in probabilities]
        product = product_divide_and_conquer(polys)
        assert product.sum() == pytest.approx(1.0)
        assert product.size == len(probabilities) + 1

    def test_product_empty_list(self):
        assert product_divide_and_conquer([]).tolist() == [1.0]
        assert product_naive([]).tolist() == [1.0]

    def test_product_single_factor(self):
        assert product_divide_and_conquer([np.array([1.0, 2.0])]).tolist() == [1.0, 2.0]

    def test_product_with_one_dominant_factor(self):
        rng = np.random.default_rng(4)
        big = rng.normal(size=50)
        small = [np.array([1.0, p]) for p in rng.uniform(size=5)]
        assert np.allclose(
            product_divide_and_conquer([big] + small),
            product_naive([big] + small),
            atol=1e-8,
        )


class TestExpressionExpansion:
    def test_simple_expression(self):
        x = PolynomialExpression.variable()
        expr = (PolynomialExpression.constant(1) + x) * (x * x)
        assert np.allclose(expand_expression(expr), [0, 0, 1, 1])

    def test_nested_expression_matches_numpy(self):
        x = PolynomialExpression.variable()
        # ((1 + x + x^2)(x^2 + 2x^3) + x^3 (2 + 3x^4))(1 + 2x)
        expr = (
            (1 + x + x * x) * (x * x + 2 * (x * x * x))
            + (x * x * x) * (2 + 3 * (x * x * x * x))
        ) * (1 + 2 * x)
        coefficients = expand_expression(expr)
        p1 = np.polynomial.polynomial.polymul([1, 1, 1], [0, 0, 1, 2])
        p2 = np.polynomial.polynomial.polymul([0, 0, 0, 1], [2, 0, 0, 0, 3])
        total = np.polynomial.polynomial.polyadd(p1, p2)
        expected = np.polynomial.polynomial.polymul(total, [1, 2])
        assert np.allclose(coefficients[: expected.size], expected, atol=1e-8)

    def test_degree_bound(self):
        x = PolynomialExpression.variable()
        expr = (x + 1) * (x + 1) * (x + 1)
        assert expr.degree_bound() == 3

    def test_callable_requires_max_degree(self):
        with pytest.raises(ValueError):
            expand_expression(lambda z: z + 1)

    def test_callable_with_max_degree(self):
        coefficients = expand_expression(lambda z: (1 + z) ** 3, max_degree=3)
        assert np.allclose(coefficients, [1, 3, 3, 1], atol=1e-8)

    def test_type_error_on_bad_operand(self):
        x = PolynomialExpression.variable()
        with pytest.raises(TypeError):
            x + "not a number"  # type: ignore[operator]
