"""Top-k early termination — the pruned kernels versus the full rankings.

The central contract: for every correlation model and every PRF-family
member, ``Engine.rank_top_k(data, rf, k)`` returns exactly the first
``k`` items of ``Engine.rank(data, rf)`` — same identifiers, same
positions, and (on independent relations and and/xor trees) bit-identical
values — while the prunable specs (PRFe, real ``alpha < 1``) may examine
only a prefix of the score-sorted tuples.  Randomized fixed-seed sweeps
exercise the boundary between examined and pruned tuples; edge cases pin
``k = 0``, ``k = 1``, ``k >= n``, ties at the k-th value, zero
probabilities and empty datasets.  The service-tier tests cover the
``top_k`` request type end to end (coalescing, caching keyed per ``k``,
the TCP op).
"""

from __future__ import annotations

import asyncio
import random

import numpy as np
import pytest

from repro import (
    PRF,
    Engine,
    LinearCombinationPRFe,
    PRFOmega,
    PRFe,
    ProbabilisticRelation,
    Tuple,
)
from repro.andxor.ranking import prfe_topk_values_tree, prfe_values_tree
from repro.andxor.tree import AndXorTree
from repro.core.weights import NDCGDiscountWeight, StepWeight
from repro.engine import TopKReport, prunable
from repro.engine.topk import certified, independent_topk_log_values, validated_k
from repro.graphical import MarkovChainRelation
from repro.graphical.ranking import prefix_count_distribution
from repro.service import RankingService
from repro.service.client import AsyncRankingClient, RemoteServiceError, TCPRankingClient
from repro.service.tcp import serve_tcp


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Dataset builders (fixed-seed randomized)
# ---------------------------------------------------------------------------
def make_relation(n: int, seed: int, name: str = "rel") -> ProbabilisticRelation:
    rng = np.random.default_rng(seed)
    return ProbabilisticRelation.from_arrays(
        rng.uniform(0.0, 1000.0, n), rng.uniform(0.0, 1.0, n), name=name
    )


def make_tree(seed: int, groups: int = 40) -> AndXorTree:
    rng = random.Random(seed)
    xgroups, counter = [], 0
    for _ in range(groups):
        group = []
        size = rng.randint(1, 4)
        for _ in range(size):
            group.append(
                Tuple(
                    f"x{counter}",
                    rng.uniform(0.0, 1000.0),
                    rng.uniform(0.01, 0.95 / size),
                )
            )
            counter += 1
        xgroups.append(group)
    return AndXorTree.from_x_tuples(xgroups, name=f"tree-{seed}")


def make_network(seed: int, n: int = 10):
    rng = np.random.default_rng(seed)
    tuples = [
        Tuple(f"m{i}", float(score), 1.0)
        for i, score in enumerate(rng.permutation(n * 10)[:n])
    ]
    chain = MarkovChainRelation.homogeneous(tuples, 0.6, 0.7, 0.8, name=f"net-{seed}")
    return chain.to_markov_network()


def assert_prefix(pruned, full, k: int, bitwise_values: bool = True) -> None:
    """``pruned`` must be exactly the first ``k`` items of ``full``."""
    want = full[:k]
    assert [item.tid for item in pruned] == [item.tid for item in want]
    assert [item.position for item in pruned] == [item.position for item in want]
    if bitwise_values:
        assert [item.value for item in pruned] == [item.value for item in want]


FAMILY = [
    pytest.param(PRFe(0.95), id="PRFe-real"),
    pytest.param(PRFe(0.4), id="PRFe-small-alpha"),
    pytest.param(PRFe(1.0), id="PRFe-alpha-one"),
    pytest.param(PRFe(0.0), id="PRFe-zero"),
    pytest.param(PRFe(0.5 + 0.25j), id="PRFe-complex"),
    pytest.param(PRFOmega(StepWeight(10)), id="PRFomega-step"),
    pytest.param(PRF(NDCGDiscountWeight()), id="PRF-general"),
    pytest.param(
        LinearCombinationPRFe([0.6, 0.4j], [0.9, 0.4 + 0.1j]), id="LinearCombinationPRFe"
    ),
]


# ---------------------------------------------------------------------------
# Engine.rank_top_k == Engine.rank prefix, across backends and specs
# ---------------------------------------------------------------------------
class TestPrefixEquality:
    @pytest.mark.parametrize("rf", FAMILY)
    @pytest.mark.parametrize("k", [0, 1, 3, 25, 10_000])
    def test_independent_matches_full_prefix(self, rf, k):
        relation = make_relation(120, seed=11)
        engine = Engine()
        full = engine.rank(relation, rf)
        pruned, report = engine.rank_top_k(relation, rf, k)
        assert_prefix(pruned, full, k)
        assert report.k == k and report.n == 120

    @pytest.mark.parametrize("rf", FAMILY)
    @pytest.mark.parametrize("k", [0, 1, 5, 1_000])
    def test_andxor_matches_full_prefix(self, rf, k):
        tree = make_tree(seed=13)
        engine = Engine()
        full = engine.rank(tree, rf)
        pruned, report = engine.rank_top_k(tree, rf, k)
        assert_prefix(pruned, full, k)
        assert report.k == k

    @pytest.mark.parametrize("rf", FAMILY)
    @pytest.mark.parametrize("k", [0, 1, 3, 100])
    def test_markov_matches_full_prefix(self, rf, k):
        network = make_network(seed=17)
        full = Engine().rank(network, rf)
        # Fresh engine: a cached positional matrix would (by design)
        # short-circuit the pruned path.
        pruned, report = Engine().rank_top_k(network, rf, k)
        # The streamed Markov path recomputes per-row products, so the
        # prefix *set* is exact but the last ulp of a value may differ
        # from the full matrix product.
        assert_prefix(pruned, full, k, bitwise_values=False)
        assert report.k == k

    def test_randomized_sweep_independent(self):
        rng = random.Random(23)
        for trial in range(25):
            n = rng.randint(1, 300)
            relation = make_relation(n, seed=500 + trial)
            alpha = rng.uniform(0.05, 0.999)
            k = rng.randint(1, n)
            engine = Engine()
            full = engine.rank(relation, PRFe(alpha))
            pruned, report = engine.rank_top_k(relation, PRFe(alpha), k)
            assert_prefix(pruned, full, k)
            assert report.examined <= n

    def test_randomized_sweep_andxor(self):
        rng = random.Random(29)
        for trial in range(10):
            tree = make_tree(seed=700 + trial, groups=rng.randint(5, 60))
            alpha = rng.uniform(0.05, 0.999)
            n = len(tree.leaves)
            k = rng.randint(1, n)
            engine = Engine()
            full = engine.rank(tree, PRFe(alpha))
            pruned, _ = engine.rank_top_k(tree, PRFe(alpha), k)
            assert_prefix(pruned, full, k)

    def test_randomized_sweep_markov(self):
        rng = random.Random(31)
        for trial in range(5):
            n = rng.randint(3, 12)
            network = make_network(seed=900 + trial, n=n)
            alpha = rng.uniform(0.1, 0.95)
            k = rng.randint(1, n)
            full = Engine().rank(network, PRFe(alpha))
            pruned, _ = Engine().rank_top_k(network, PRFe(alpha), k)
            assert_prefix(pruned, full, k, bitwise_values=False)

    def test_pruning_engages_on_large_relations(self):
        relation = make_relation(1000, seed=37)
        pruned, report = Engine().rank_top_k(relation, PRFe(0.8), 10)
        assert report.pruned and report.examined < 1000
        assert 0.0 < report.fraction_examined < 1.0
        full = Engine().rank(relation, PRFe(0.8))
        assert_prefix(pruned, full, 10)


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------
class TestEdgeCases:
    def test_k_zero_returns_empty(self):
        relation = make_relation(10, seed=41)
        result, report = Engine().rank_top_k(relation, PRFe(0.9), 0)
        assert len(result) == 0
        assert report == TopKReport(k=0, n=10, examined=0, pruned=True)

    def test_k_exceeding_n_is_the_full_ranking(self):
        relation = make_relation(8, seed=43)
        engine = Engine()
        full = engine.rank(relation, PRFe(0.9))
        result, report = engine.rank_top_k(relation, PRFe(0.9), 100)
        assert len(result) == 8
        assert_prefix(result, full, 100)
        assert not report.pruned and report.examined == 8

    def test_negative_and_non_integral_k_rejected(self):
        relation = make_relation(5, seed=47)
        engine = Engine()
        with pytest.raises(ValueError):
            engine.rank_top_k(relation, PRFe(0.9), -1)
        with pytest.raises(ValueError):
            engine.rank_top_k(relation, PRFe(0.9), 2.5)
        assert validated_k(3.0) == 3  # integral floats are accepted

    def test_empty_dataset(self):
        relation = ProbabilisticRelation([], name="empty")
        result, report = Engine().rank_top_k(relation, PRFe(0.9), 5)
        assert len(result) == 0
        assert report.n == 0 and not report.pruned

    def test_ties_at_the_kth_value(self):
        # Four tuples share one probability/score pattern, so values tie at
        # the boundary; the prefix must match the full ranking's tie-break.
        pairs = [(100.0 - i, 0.5) for i in range(8)] + [(50.0, 0.25)] * 4
        relation = ProbabilisticRelation.from_pairs(pairs, name="ties")
        engine = Engine()
        rf = PRFe(0.9)
        full = engine.rank(relation, rf)
        for k in range(len(pairs) + 1):
            pruned, _ = engine.rank_top_k(relation, rf, k)
            assert_prefix(pruned, full, k)

    def test_all_zero_probabilities(self):
        relation = ProbabilisticRelation.from_pairs(
            [(10.0, 0.0), (5.0, 0.0), (1.0, 0.0)], name="zeros"
        )
        engine = Engine()
        full = engine.rank(relation, PRFe(0.9))
        pruned, report = engine.rank_top_k(relation, PRFe(0.9), 2)
        assert_prefix(pruned, full, 2)
        assert report.examined == 3  # nothing is certifiable, all examined

    def test_alpha_one_is_not_prunable(self):
        # PRFe(1.0) is expected count — the decay bound is vacuous there.
        assert not prunable(PRFe(1.0))
        assert prunable(PRFe(0.999))
        assert not prunable(PRFe(0.5 + 0.1j))
        assert not prunable(PRFOmega(StepWeight(5)))

    def test_report_fraction_examined(self):
        report = TopKReport(k=5, n=200, examined=50, pruned=True)
        assert report.fraction_examined == 0.25
        assert TopKReport(k=0, n=0, examined=0, pruned=False).fraction_examined == 1.0


# ---------------------------------------------------------------------------
# The kernels themselves
# ---------------------------------------------------------------------------
class TestKernels:
    def test_independent_streamed_kernel_is_bitwise_stable_under_growth(self):
        # The streamed kernel recomputes from scratch at each prefix growth;
        # its log values must equal the full kernel's entries exactly.
        from repro.engine.kernels import batched_prfe_log_values

        rng = np.random.default_rng(53)
        probabilities = rng.uniform(0.0, 1.0, 500)
        alpha = 0.85
        log_values, examined, bound = independent_topk_log_values(
            probabilities, alpha, 5
        )
        full = batched_prfe_log_values(probabilities[None, :], alpha)[0]
        assert examined <= 500
        np.testing.assert_array_equal(log_values, full[:examined])
        assert certified(log_values, 5, bound)

    def test_certified_semantics(self):
        keys = np.array([5.0, 3.0, 1.0])
        assert certified(keys, 1, 4.0)
        assert not certified(keys, 2, 4.0)  # 2nd best (3.0) below the bound
        assert certified(keys, 2, 2.0)
        assert not certified(keys, 4, 0.0)  # fewer than k examined
        assert not certified(keys, 0, 0.0)

    def test_tree_topk_kernel_matches_full_algorithm3_prefix(self):
        tree = make_tree(seed=59)
        alpha = 0.9
        ordered_full, full_values = prfe_values_tree(tree, alpha)
        ordered, values, examined, bound = prfe_topk_values_tree(tree, alpha, 5)
        assert [t.tid for t in ordered] == [t.tid for t in ordered_full]
        np.testing.assert_array_equal(values, full_values[:examined])
        assert examined <= len(ordered)

    def test_prefix_count_distribution_matches_independent_convolution(self):
        # On a from_independent network the prefix count is a sum of
        # independent Bernoullis — compare against the explicit convolution.
        rng = np.random.default_rng(61)
        pairs = [(float(100 - i), float(p)) for i, p in enumerate(rng.uniform(0.1, 0.9, 6))]
        relation = ProbabilisticRelation.from_pairs(pairs, name="ind")
        from repro.graphical import MarkovNetworkRelation

        network = MarkovNetworkRelation.from_independent(relation)
        ordered = network.sorted_tuples()
        prefix = [t.tid for t in ordered[:4]]
        probabilities = {t.tid: t.probability for t in relation.tuples}
        expected = np.ones(1)
        for tid in prefix:
            p = probabilities[tid]
            expected = np.convolve(expected, np.array([1.0 - p, p]))
        actual = prefix_count_distribution(network, prefix)
        np.testing.assert_allclose(actual[: expected.size], expected, atol=1e-12)
        assert actual.sum() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Facade wiring: plans, batches, sweeps, memo reuse
# ---------------------------------------------------------------------------
class TestFacade:
    def test_plan_records_pruning_decision(self):
        relation = make_relation(30, seed=67)
        engine = Engine()
        plan = engine.plan(relation, PRFe(0.9), top_k=5)
        assert plan.top_k == 5 and plan.prune
        assert "top-k early termination" in plan.algorithm
        plan_full = engine.plan(relation, PRFe(0.9))
        assert plan_full.top_k is None and not plan_full.prune
        plan_omega = engine.plan(relation, PRFOmega(StepWeight(5)), top_k=5)
        assert plan_omega.top_k == 5 and not plan_omega.prune

    def test_rank_with_top_k_argument(self):
        relation = make_relation(60, seed=71)
        engine = Engine()
        full = engine.rank(relation, PRFe(0.9))
        assert_prefix(engine.rank(relation, PRFe(0.9), top_k=7), full, 7)

    def test_rank_batch_with_top_k(self):
        datasets = [make_relation(50, seed=73), make_tree(seed=79), make_network(seed=83)]
        engine = Engine()
        fulls = [Engine().rank(data, PRFe(0.9)) for data in datasets]
        results = engine.rank_batch(datasets, PRFe(0.9), top_k=4)
        for result, full in zip(results, fulls):
            assert [item.tid for item in result] == [item.tid for item in full[:4]]

    def test_submit_batch_with_top_k(self):
        datasets = [make_relation(50, seed=73), make_relation(40, seed=89)]
        engine = Engine()
        try:
            results = engine.submit_batch(datasets, PRFe(0.9), top_k=3).result(timeout=30)
            assert all(len(result) == 3 for result in results)
        finally:
            engine.close()

    def test_rank_many_with_top_k(self):
        relation = make_relation(80, seed=97)
        specs = [PRFe(0.5), PRFe(0.9), PRFOmega(StepWeight(5))]
        engine = Engine()
        fulls = engine.rank_many(relation, specs)
        results = engine.rank_many(relation, specs, top_k=6)
        for result, full in zip(results, fulls):
            assert_prefix(result, full, 6)

    def test_memo_serves_smaller_k_without_recomputation(self):
        relation = make_relation(800, seed=101)
        engine = Engine()
        _, first = engine.rank_top_k(relation, PRFe(0.8), 10)
        assert first.pruned
        pruned, second = engine.rank_top_k(relation, PRFe(0.8), 3)
        assert second.examined == first.examined  # served from the memo
        full = Engine().rank(relation, PRFe(0.8))
        assert_prefix(pruned, full, 3)

    def test_andxor_full_prefix_promotes_to_full_memo(self):
        tree = make_tree(seed=103, groups=6)
        engine = Engine()
        n = len(tree.leaves)
        _, report = engine.rank_top_k(tree, PRFe(0.95), n - 1)
        if report.examined == n:
            entry = engine.backend_for(tree).entry(tree)
            assert ("prfe", complex(0.95)) in entry.extras
        # And the full ranking stays bit-identical afterwards.
        full = Engine().rank(tree, PRFe(0.95))
        again = engine.rank(tree, PRFe(0.95))
        assert [item.value for item in again] == [item.value for item in full]


# ---------------------------------------------------------------------------
# Service tier: the top_k request type
# ---------------------------------------------------------------------------
class TestServiceTopK:
    def test_submit_top_k_matches_engine(self):
        relation = make_relation(100, seed=107)
        full = Engine().rank(relation, PRFe(0.9))

        async def scenario():
            async with RankingService() as service:
                reply = await service.submit(relation, PRFe(0.9), top_k=5)
                assert reply.k == 5
                assert_prefix(reply.result, full, 5)

        run(scenario())

    def test_cache_and_dedup_key_on_k(self):
        relation = make_relation(100, seed=109)

        async def scenario():
            async with RankingService() as service:
                first = await service.submit(relation, PRFe(0.9), top_k=5)
                hit = await service.submit(relation, PRFe(0.9), top_k=5)
                assert hit.cached and hit.k == 5
                other = await service.submit(relation, PRFe(0.9), top_k=9)
                assert not other.cached and len(other.result) == 9
                full = await service.submit(relation, PRFe(0.9))
                assert not full.cached and full.k is None
                assert len(full.result) == 100
                assert len(first.result) == 5

        run(scenario())

    def test_concurrent_identical_top_k_deduplicate(self):
        relation = make_relation(100, seed=113)

        async def scenario():
            async with RankingService() as service:
                replies = await asyncio.gather(
                    *(service.submit(relation, PRFe(0.9), top_k=5) for _ in range(6))
                )
                assert all(len(reply.result) == 5 for reply in replies)
                assert any(reply.deduplicated for reply in replies)
                assert service.stats.deduplicated >= 1

        run(scenario())

    def test_invalid_top_k_rejected(self):
        relation = make_relation(10, seed=127)

        async def scenario():
            async with RankingService() as service:
                with pytest.raises(ValueError):
                    await service.submit(relation, PRFe(0.9), top_k=-2)

        run(scenario())

    def test_async_client_top_k(self):
        relation = make_relation(100, seed=131)
        full = Engine().rank(relation, PRFe(0.9))

        async def scenario():
            async with RankingService() as service:
                client = AsyncRankingClient(service)
                tids = await client.top_k(relation, PRFe(0.9), 5)
                assert tids == [item.tid for item in full[:5]]
                reply = await client.top_k_detailed(relation, PRFe(0.9), 5)
                assert reply.k == 5 and len(reply.result) == 5

        run(scenario())

    def test_tcp_top_k_op(self):
        relation = make_relation(60, seed=137)
        full = Engine().rank(relation, PRFe(0.9))

        async def scenario():
            async with RankingService() as service:
                server = await serve_tcp(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    async with await TCPRankingClient.connect(port=port) as client:
                        tids = await client.top_k(relation, PRFe(0.9), 5)
                        assert tids == [item.tid for item in full[:5]]
                        response = await client._call(
                            {
                                "op": "top_k",
                                "dataset": None,
                                "rf": None,
                                "k": 3,
                            }
                        )
                finally:
                    server.close()
                    await server.wait_closed()

        with pytest.raises(RemoteServiceError):
            run(scenario())

    def test_tcp_top_k_requires_k(self):
        relation = make_relation(20, seed=139)

        async def scenario():
            async with RankingService() as service:
                server = await serve_tcp(service, port=0)
                port = server.sockets[0].getsockname()[1]
                try:
                    async with await TCPRankingClient.connect(port=port) as client:
                        from repro.service import dataset_to_payload, ranking_function_to_payload

                        message = {
                            "op": "top_k",
                            "dataset": dataset_to_payload(relation),
                            "rf": ranking_function_to_payload(PRFe(0.9)),
                        }
                        with pytest.raises(RemoteServiceError) as failure:
                            await client._call(message)
                        assert failure.value.kind == "protocol"
                        response = await client._call({**message, "k": 4})
                        assert response["k"] == 4
                        assert len(response["ranking"]) == 4
                finally:
                    server.close()
                    await server.wait_closed()

        run(scenario())
