"""Tests for the batched vectorized ranking engine.

The core contract: every engine entry point (``rank``, ``rank_batch``,
``rank_many``, sharded or serial) must produce rankings identical to the
per-relation :func:`repro.algorithms.independent.rank_independent` path
for every member of the PRF family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PRF,
    Engine,
    LinearCombinationPRFe,
    PRFOmega,
    PRFe,
    ProbabilisticRelation,
    rank,
)
from repro.algorithms.independent import positional_probabilities, rank_independent
from repro.core.weights import NDCGDiscountWeight, StepWeight
from repro.engine import RelationCache, relation_fingerprint


def make_relations(count: int, rng: np.random.Generator) -> list[ProbabilisticRelation]:
    """Synthetic relations of mixed sizes, with degenerate cases sprinkled in."""
    relations = []
    for index in range(count):
        n = int(rng.integers(2, 40))
        relations.append(
            ProbabilisticRelation.from_arrays(
                rng.uniform(0.0, 1000.0, size=n),
                rng.uniform(0.0, 1.0, size=n),
                name=f"syn-{index}",
            )
        )
    relations.append(ProbabilisticRelation([], name="empty"))
    relations.append(
        ProbabilisticRelation.from_pairs([(5.0, 0.0), (4.0, 1.0), (3.0, 0.0)], name="degenerate")
    )
    return relations


FAMILY = [
    pytest.param(PRFe(0.95), id="PRFe-real"),
    pytest.param(PRFe(0.5 + 0.25j), id="PRFe-complex"),
    pytest.param(PRFe(0.0), id="PRFe-zero"),
    pytest.param(PRFOmega(StepWeight(10)), id="PRFomega-step"),
    pytest.param(PRFOmega([0.9, 0.5, 0.25, 0.1]), id="PRFomega-tabulated"),
    pytest.param(PRF(NDCGDiscountWeight()), id="PRF-general"),
    pytest.param(
        PRF(NDCGDiscountWeight(), tuple_factor=lambda t: t.score),
        id="PRF-tuple-factor",
    ),
    pytest.param(
        LinearCombinationPRFe([0.6, 0.4j], [0.9, 0.4 + 0.1j]), id="LinearCombinationPRFe"
    ),
]


def assert_same_ranking(result, reference, context=""):
    assert result.tids() == reference.tids(), context
    values = np.asarray([item.value for item in result], dtype=complex)
    expected = np.asarray([item.value for item in reference], dtype=complex)
    assert np.allclose(values, expected, rtol=1e-9, atol=1e-12), context


class TestBatchVersusSingle:
    @pytest.mark.parametrize("rf", FAMILY)
    def test_rank_batch_matches_rank_independent(self, rf):
        rng = np.random.default_rng(7)
        relations = make_relations(100, rng)
        engine = Engine()
        results = engine.rank_batch(relations, rf)
        assert len(results) == len(relations)
        for relation, result in zip(relations, results):
            reference = rank_independent(relation, rf)
            assert_same_ranking(result, reference, context=relation.name)
            assert result.name == relation.name

    @pytest.mark.parametrize("rf", FAMILY)
    def test_engine_rank_matches_rank_independent(self, rf):
        rng = np.random.default_rng(11)
        for relation in make_relations(10, rng):
            result = Engine().rank(relation, rf)
            assert_same_ranking(result, rank_independent(relation, rf), relation.name)

    def test_prfe_real_path_is_bitwise_identical(self):
        rng = np.random.default_rng(3)
        relations = make_relations(20, rng)
        engine = Engine()
        for relation, result in zip(relations, engine.rank_batch(relations, PRFe(0.95))):
            reference = rank_independent(relation, PRFe(0.95))
            assert [item.value for item in result] == [item.value for item in reference]

    def test_batch_results_preserve_input_order_across_mixed_sizes(self):
        rng = np.random.default_rng(5)
        relations = make_relations(30, rng)
        engine = Engine()
        results = engine.rank_batch(relations, PRFe(0.9))
        assert [result.name for result in results] == [r.name for r in relations]

    def test_empty_batch(self):
        assert Engine().rank_batch([], PRFe(0.9)) == []

    def test_rejects_non_relations(self):
        with pytest.raises(TypeError, match="ProbabilisticRelation"):
            Engine().rank_batch([object()], PRFe(0.9))


class TestRankMany:
    def test_rank_many_matches_per_spec_ranking(self):
        rng = np.random.default_rng(13)
        relation = make_relations(1, rng)[0]
        specs = [
            PRFe(0.99),
            PRFe(0.5),
            PRFe(0.0),
            PRFe(0.3 + 0.4j),
            PRFOmega(StepWeight(5)),
            PRF(NDCGDiscountWeight()),
            LinearCombinationPRFe([1.0], [0.8]),
        ]
        results = Engine().rank_many(relation, specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            assert_same_ranking(result, rank_independent(relation, spec), repr(spec))

    def test_alpha_sweep_is_bitwise_identical_to_legacy(self):
        rng = np.random.default_rng(17)
        relation = make_relations(1, rng)[0]
        alphas = 1.0 - 0.9 ** np.arange(1, 30)
        specs = [PRFe(float(alpha)) for alpha in alphas]
        results = Engine().rank_many(relation, specs)
        for spec, result in zip(specs, results):
            reference = rank_independent(relation, spec)
            assert [item.value for item in result] == [item.value for item in reference]

    def test_empty_spec_list(self):
        relation = ProbabilisticRelation.from_pairs([(1.0, 0.5)])
        assert Engine().rank_many(relation, []) == []


class TestCache:
    def test_fingerprint_is_content_based(self):
        pairs = [(3.0, 0.5), (2.0, 0.6)]
        a = ProbabilisticRelation.from_pairs(pairs)
        b = ProbabilisticRelation.from_pairs(pairs)
        assert a is not b
        assert relation_fingerprint(a) == relation_fingerprint(b)
        c = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.7)])
        assert relation_fingerprint(a) != relation_fingerprint(c)

    def test_fingerprint_distinguishes_tuple_attributes(self):
        from repro import Tuple

        base = [("a", 10.0, 0.5), ("b", 5.0, 0.4)]
        plain = ProbabilisticRelation([Tuple(*spec) for spec in base])
        weighted = ProbabilisticRelation(
            [Tuple(tid, score, p, attributes={"w": 50.0}) for tid, score, p in base]
        )
        assert relation_fingerprint(plain) != relation_fingerprint(weighted)
        # The default-engine routed rank() must therefore never serve one
        # relation's tuples (and tuple_factor inputs) for the other.
        rf = PRF([1.0, 0.5], tuple_factor=lambda t: t.attributes.get("w", 1.0))
        engine = Engine()
        engine.rank(plain, rf)
        result = engine.rank(weighted, rf)
        reference = rank_independent(weighted, rf)
        assert result.tids() == reference.tids()
        assert [item.value for item in result] == pytest.approx(
            [item.value for item in reference]
        )

    def test_repeated_rankings_hit_the_cache(self):
        engine = Engine()
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6), (1.0, 0.4)])
        engine.rank(relation, PRFOmega(StepWeight(2)))
        engine.rank(relation, PRFOmega(StepWeight(2)))
        stats = engine.cache_stats()
        assert stats["hits"] >= 1
        assert stats["misses"] == 1

    def test_results_carry_the_callers_tuple_objects(self):
        pairs = [(3.0, 0.5), (2.0, 0.6)]
        engine = Engine()
        first = ProbabilisticRelation.from_pairs(pairs)
        second = ProbabilisticRelation.from_pairs(pairs)
        engine.rank(first, PRFOmega(StepWeight(2)))
        # A cache hit from a content-equal but distinct relation must not
        # alias the first relation's Tuple objects into the result.
        result = engine.rank(second, PRFOmega(StepWeight(2)))
        assert all(item.item is second.get(item.tid) for item in result)
        ordered, _ = engine.positional_matrix(second, max_rank=2)
        assert all(t is second.get(t.tid) for t in ordered)

    def test_lru_eviction_bounds_entries(self):
        cache = RelationCache(max_relations=4)
        rng = np.random.default_rng(23)
        for relation in make_relations(10, rng):
            cache.get(relation)
        assert len(cache) <= 4
        assert cache.stats.evictions > 0

    def test_element_budget_evicts_matrices(self):
        engine = Engine(cache_elements=500, max_batch_elements=100_000)
        rng = np.random.default_rng(29)
        relations = [
            ProbabilisticRelation.from_arrays(
                rng.uniform(0, 100, 30), rng.uniform(0, 1, 30), name=f"big-{i}"
            )
            for i in range(5)
        ]
        for relation in relations:
            engine.positional_matrix(relation)
        assert engine.cache.total_elements() <= 500 or len(engine.cache) == 1

    def test_positional_matrix_matches_algorithm(self):
        engine = Engine()
        rng = np.random.default_rng(31)
        relation = make_relations(1, rng)[0]
        for max_rank in (None, 0, 3, len(relation), len(relation) + 10):
            ordered, matrix = engine.positional_matrix(relation, max_rank=max_rank)
            ref_ordered, ref_matrix = positional_probabilities(relation, max_rank=max_rank)
            assert [t.tid for t in ordered] == [t.tid for t in ref_ordered]
            assert np.array_equal(matrix, ref_matrix)

    def test_positional_matrix_narrowing_after_widening(self):
        engine = Engine()
        relation = ProbabilisticRelation.from_pairs(
            [(9.0, 0.9), (8.0, 0.8), (7.0, 0.7), (6.0, 0.6)]
        )
        _, wide = engine.positional_matrix(relation)
        _, narrow = engine.positional_matrix(relation, max_rank=2)
        assert np.array_equal(wide[:, :2], narrow)


class TestSharding:
    def test_sharded_batch_matches_serial(self):
        rng = np.random.default_rng(37)
        relations = make_relations(24, rng)
        serial = Engine().rank_batch(relations, PRFe(0.95))
        sharded = Engine(workers=2, shard_min_batch=4).rank_batch(relations, PRFe(0.95))
        for a, b in zip(serial, sharded):
            assert a.tids() == b.tids()
            assert [item.value for item in a] == pytest.approx(
                [item.value for item in b]
            )

    def test_unpicklable_ranking_function_falls_back_to_serial(self):
        rng = np.random.default_rng(41)
        relations = make_relations(8, rng)
        rf = PRF(lambda i: 1.0 / i)
        engine = Engine(workers=2, shard_min_batch=2)
        results = engine.rank_batch(relations, rf)
        for relation, result in zip(relations, results):
            assert result.tids() == rank_independent(relation, rf).tids()

    def test_sharding_preserves_tuple_attributes(self):
        from repro import Tuple

        relations = [
            ProbabilisticRelation(
                [
                    Tuple(f"t{i}", float(10 - i), 0.5, attributes={"payload": i})
                    for i in range(6)
                ],
                name=f"attr-{j}",
            )
            for j in range(8)
        ]
        engine = Engine(workers=2, shard_min_batch=2)
        results = engine.rank_batch(relations, PRFe(0.9))
        for result in results:
            assert all(item.item.attributes["payload"] is not None for item in result)


class TestDefaultEngineRouting:
    def test_core_rank_routes_through_engine(self):
        from repro.engine import default_engine

        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6), (1.0, 0.4)])
        engine = default_engine()
        before = engine.cache_stats()["misses"] + engine.cache_stats()["hits"]
        result = rank(relation, PRFOmega(StepWeight(2)))
        after = engine.cache_stats()["misses"] + engine.cache_stats()["hits"]
        assert after > before
        assert result.tids() == rank_independent(relation, PRFOmega(StepWeight(2))).tids()

    def test_set_default_engine_roundtrip(self):
        from repro.engine import default_engine, set_default_engine

        custom = Engine(cache_relations=2)
        previous = set_default_engine(custom)
        try:
            assert default_engine() is custom
        finally:
            set_default_engine(previous)


class TestServiceHooks:
    """The engine hooks added for the async ranking service."""

    def test_submit_batch_is_nonblocking_and_matches_rank_batch(self):
        rng = np.random.default_rng(23)
        relations = make_relations(12, rng)
        engine = Engine()
        try:
            future = engine.submit_batch(relations, PRFe(0.95))
            background = future.result(timeout=30)
        finally:
            engine.close()
        foreground = Engine().rank_batch(relations, PRFe(0.95))
        for a, b in zip(background, foreground):
            assert a.tids() == b.tids()
            assert [item.value for item in a] == [item.value for item in b]

    def test_plan_batch_tags_each_dataset(self):
        rng = np.random.default_rng(29)
        relations = make_relations(3, rng)
        plans = Engine().plan_batch(relations, PRFe(0.9))
        assert [plan.model for plan in plans] == ["independent"] * len(relations)
        assert all("prfe" in plan.algorithm for plan in plans)

    def test_cache_info_reports_occupancy_and_budgets(self):
        engine = Engine(cache_relations=4, cache_elements=1000)
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6)])
        engine.rank(relation, PRFOmega(StepWeight(2)))
        info = engine.cache_info()
        assert info["entries"] == 1
        assert info["elements"] > 0
        assert info["max_relations"] == 4
        assert info["max_elements"] == 1000
        assert info["misses"] >= 1
        assert 0.0 <= info["hit_rate"] <= 1.0

    def test_close_is_idempotent_and_engine_stays_usable(self):
        engine = Engine()
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6)])
        engine.close()
        engine.close()
        future = engine.submit_batch([relation], PRFe(0.9))
        assert future.result(timeout=30)[0].tids()
        engine.close()

    def test_context_manager_closes_executor(self):
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6)])
        with Engine() as engine:
            future = engine.submit_batch([relation], PRFe(0.9))
            assert len(future.result(timeout=30)) == 1
        assert engine._submit_executor is None
