"""Fixture: leaked executors, pipes, and file handles for RES401.

Each resource below is constructed and abandoned: no ``close``, no
``with``, no handoff to another owner.  Under a restart storm every
respawn leaks another one until the process runs out of descriptors.
"""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def run_job(fn) -> None:
    pool = ThreadPoolExecutor(max_workers=2)  # BUG: RES401 expected here
    pool.submit(fn)


def first_line(path: str) -> str:
    handle = open(path)  # BUG: RES401 expected here
    return handle.readline()


def make_channel() -> None:
    multiprocessing.Pipe()  # BUG: RES401 expected here (discarded outright)
