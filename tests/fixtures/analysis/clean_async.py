"""Clean fixture: correct asyncio patterns that must NOT be flagged.

Every shape here mirrors real code in ``repro.service``: offloaded
blocking work, retained tasks with done-callbacks, async locks held
across awaits, and short sync critical sections inside coroutines.
"""

import asyncio
import pickle
import time


async def sleeps_correctly() -> None:
    await asyncio.sleep(0.01)


async def offloads_blocking_work(payload: object) -> bytes:
    return await asyncio.to_thread(pickle.dumps, payload)


async def passes_blocking_fn_by_reference() -> None:
    await asyncio.to_thread(time.sleep, 0.01)


class Server:
    def __init__(self) -> None:
        self._tasks: set[asyncio.Task] = set()
        self._loop_task: asyncio.Task | None = None
        self._alock = asyncio.Lock()
        self._entries: dict[str, object] = {}

    def start(self) -> None:
        self._loop_task = asyncio.get_event_loop().create_task(self._run())

    async def _run(self) -> None:
        await asyncio.sleep(0)

    async def handle(self, request: object) -> None:
        task = asyncio.create_task(self._run())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        await task

    async def awaited_spawn(self) -> object:
        task = asyncio.create_task(self._run())
        return await task

    async def async_lock_across_await_is_fine(self, key: str) -> None:
        async with self._alock:
            self._entries[key] = await self._fetch(key)

    async def _fetch(self, key: str) -> object:
        await asyncio.sleep(0)
        return key

    async def wraps_future(self, future) -> object:
        return await asyncio.wrap_future(future)
