"""Fixture: timeout-bounded network/queue awaits that ASYNC104 must pass.

Each pattern below bounds the hang-prone await — either by making it an
*argument* of a directly awaited ``asyncio.wait_for(...)`` or by running
it under an ``async with asyncio.timeout(...)`` scope (including from an
outer block, and via ``timeout_at``).  Awaits that are not hang-prone
(plain coroutines, futures, ``asyncio.sleep``) are never flagged.
"""

import asyncio


async def reads_with_wait_for(reader) -> bytes:
    return await asyncio.wait_for(reader.readline(), timeout=5.0)


async def flushes_in_timeout_scope(writer) -> None:
    writer.write(b"payload")
    async with asyncio.timeout(5.0):
        await writer.drain()


async def dials_in_outer_scope(host: str, port: int):
    async with asyncio.timeout(2.0):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"hello")
        await writer.drain()
    return reader, writer


async def consumes_with_deadline(queue, when: float):
    async with asyncio.timeout_at(when):
        return await queue.get()


async def polls_with_wait_for(queue):
    try:
        return await asyncio.wait_for(queue.get(), 0.05)
    except TimeoutError:
        return None


async def unflagged_awaits(worker) -> None:
    await asyncio.sleep(0.01)
    await worker.run()
