"""Clean fixture: resource lifecycles that must NOT be flagged.

Context managers, explicit close/shutdown, self-storage, and pipe ends
handed to a child process — the ownership transfers ``repro.service``
and ``repro.engine`` actually perform.
"""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def with_managed(fn) -> None:
    with ThreadPoolExecutor(max_workers=2) as pool:
        pool.submit(fn)


def explicitly_shut_down(fn) -> None:
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        pool.submit(fn)
    finally:
        pool.shutdown(wait=True)


def read_with_block(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def returned_to_caller(path: str):
    handle = open(path)
    return handle


class Owner:
    def __init__(self) -> None:
        self._pool = ThreadPoolExecutor(max_workers=1)
        parent, child = multiprocessing.Pipe()
        self._conn = parent
        self._child = multiprocessing.Process(target=_serve, args=(child,))
        child.close()

    def close(self) -> None:
        self._pool.shutdown(wait=False)
        self._conn.close()


def _serve(conn) -> None:
    conn.close()
