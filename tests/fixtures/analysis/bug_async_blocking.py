"""Fixture: blocking calls on the event loop for ASYNC101.

Every call below stalls the loop — and therefore every coalescing
window and connection — for its full duration.  The class at the bottom
hides the blocking call one ``self`` helper away, which the checker
traces one level through.
"""

import pickle
import time


async def naps_on_the_loop() -> None:
    time.sleep(0.1)  # BUG: ASYNC101 expected here


async def pickles_on_the_loop(payload: object) -> bytes:
    return pickle.dumps(payload)  # BUG: ASYNC101 expected here


async def reads_on_the_loop(path: str) -> str:
    with open(path) as handle:  # BUG: ASYNC101 expected here
        return handle.read()


async def joins_future_on_the_loop(future) -> object:
    return future.result(timeout=5.0)  # BUG: ASYNC101 expected here


class Shipper:
    def _serialize(self, payload: object) -> bytes:
        return pickle.dumps(payload)

    async def send(self, payload: object) -> bytes:
        return self._serialize(payload)  # BUG: ASYNC101 expected here (one helper away)
