"""Fixture: the HotSpotTracker/ServiceStats bug shape for LOCK201.

``record`` mutates ``self._scores`` under the lock, but the eviction
sibling mutates the same dict unlocked — the exact shape of the PR-8
HotSpotTracker self-eviction review bug (and of the earlier unlocked
``ServiceStats`` race).  The analyzer must flag the unlocked sites.
"""

import threading


class Tracker:
    def __init__(self, max_entries: int = 8) -> None:
        self._lock = threading.Lock()
        self._scores: dict[str, float] = {}
        self.max_entries = max_entries

    def record(self, key: str) -> float:
        with self._lock:
            self._scores[key] = self._scores.get(key, 0.0) + 1.0
            return self._scores[key]

    def evict_coldest(self) -> None:
        if len(self._scores) >= self.max_entries:
            coldest = min(self._scores, key=self._scores.get)
            self._scores.pop(coldest)  # BUG: LOCK201 expected here (unlocked sibling)

    def reset(self) -> None:
        self._scores = {}  # BUG: LOCK201 expected here (unlocked replacement)


class Stats:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.batches = 0

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.requests += size

    def add_request(self) -> None:
        self.requests += 1  # BUG: unlocked counter bump (LOCK201 expected here)
