"""Fixture: nondeterminism that breaks bit-identical replies.

Covers all four determinism checkers: unseeded randomness (DET301),
set iteration feeding ordered output (DET302), dict repr feeding a
fingerprint (DET303), and builtin ``hash()`` (DET304).
"""

import hashlib
import random

import numpy as np


def jitter() -> float:
    return random.random()  # BUG: DET301 expected here


def make_rng():
    return np.random.default_rng()  # BUG: DET301 expected here


def legacy_draw(n: int):
    return np.random.permutation(n)  # BUG: DET301 expected here


def tid_order(tids: set[str]) -> list[str]:
    return list(tids)  # BUG: DET302 expected here


def render(tags: set[str]) -> str:
    return ",".join(tags)  # BUG: DET302 expected here


def fingerprint(attributes: dict) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(attributes).encode())  # BUG: DET303 expected here
    return digest.hexdigest()


def partition_key(tid: str, shards: int) -> int:
    return hash(tid) % shards  # BUG: DET304 expected here
