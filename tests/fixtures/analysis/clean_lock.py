"""Clean fixture: disciplined locking that must NOT be flagged.

Mirrors the repo's conventions: every mutation of guarded state holds
the lock, ``*_locked`` helpers are called with the lock held, and
``__init__`` construction does not count as shared-state mutation.
"""

import threading


class Cache:
    def __init__(self, max_entries: int = 8) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, object] = {}
        self.max_entries = max_entries
        self.hits = 0

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._evict_locked()

    def get(self, key: str) -> object | None:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
            return value

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return dict(self._entries)


class Unshared:
    """No lock at all: single-threaded state is not a LOCK201 story."""

    def __init__(self) -> None:
        self.counter = 0

    def bump(self) -> None:
        self.counter += 1
