"""Fixture: the PR-8 unresolved-window-future shape for ASYNC102.

``_run`` fires the window task and forgets it: nothing retains the
task, nothing observes its exception, so a failure before the replies
are resolved hangs every caller awaiting a pending future — exactly the
``_execute_window`` bug the PR-8 review caught.
"""

import asyncio


class Coalescer:
    def __init__(self) -> None:
        self.pending: list[asyncio.Future] = []

    async def _execute_window(self, batch: list) -> None:
        for item in batch:
            item.set_result(None)

    async def _run(self) -> None:
        while True:
            batch, self.pending = self.pending, []
            asyncio.create_task(self._execute_window(batch))  # BUG: ASYNC102 expected here (fire-and-forget)

    async def kick_once(self, batch: list) -> None:
        task = asyncio.create_task(self._execute_window(batch))  # BUG: ASYNC102 expected here (never retained)
