"""Fixture: a threading lock held across an await for ASYNC103.

The coroutine can suspend at the ``await`` while holding the lock; any
thread (including the loop thread, re-entering through another task)
that then takes the lock deadlocks.
"""

import asyncio
import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, object] = {}

    async def refresh(self, key: str) -> None:
        with self._lock:  # BUG: ASYNC103 expected here
            payload = await self._fetch(key)
            self._entries[key] = payload

    async def _fetch(self, key: str) -> object:
        await asyncio.sleep(0)
        return key
