"""Clean fixture: deterministic patterns that must NOT be flagged.

Seeded generators, sorted set iteration, and fingerprints built from
sorted items — the patterns ``repro.engine.cache`` and
``repro.service.router`` actually use.
"""

import hashlib
import random

import numpy as np


def seeded_rng(seed: int):
    return np.random.default_rng(seed)


def seeded_stream(seed: int) -> float:
    return random.Random(seed).random()


def tid_order(tids: set[str]) -> list[str]:
    return sorted(tids)


def render(tags: set[str]) -> str:
    return ",".join(sorted(tags))


def enumerate_sorted(tids: set[str]) -> list[tuple[int, str]]:
    return list(enumerate(sorted(tids)))


def fingerprint(attributes: dict) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for key, value in sorted(attributes.items()):
        digest.update(repr((key, value)).encode())
    return digest.hexdigest()


def fingerprint_scalar(tid: str) -> str:
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr(tid).encode())
    return digest.hexdigest()


class Dedup:
    def __init__(self) -> None:
        self._seen: set[str] = set()

    def add(self, tid: str) -> bool:
        fresh = tid not in self._seen
        self._seen.add(tid)
        return fresh

    def drain(self) -> list[str]:
        out = sorted(self._seen)
        self._seen = set()
        return out
