"""Fixture: unbounded network/queue awaits for ASYNC104.

Every await below parks its coroutine forever the moment the peer goes
quiet (or the queue goes empty).  The class at the bottom shows the
hang surviving an enclosing ``async with`` that is *not* a timeout
scope — only ``asyncio.timeout(...)`` bounds the body.
"""

import asyncio


async def reads_forever(reader) -> bytes:
    return await reader.readline()  # BUG: ASYNC104 expected here


async def reads_exactly_forever(reader) -> bytes:
    return await reader.readexactly(4)  # BUG: ASYNC104 expected here


async def flushes_forever(writer) -> None:
    writer.write(b"payload")
    await writer.drain()  # BUG: ASYNC104 expected here


async def dials_forever(host: str, port: int):
    return await asyncio.open_connection(host, port)  # BUG: ASYNC104 expected here


async def consumes_forever(queue):
    return await queue.get()  # BUG: ASYNC104 expected here


class Session:
    async def close(self) -> None:
        self._writer.close()
        await self._writer.wait_closed()  # BUG: ASYNC104 expected here

    async def request(self, payload: bytes) -> bytes:
        async with self._lock:
            self._writer.write(payload)
            await self._writer.drain()  # BUG: ASYNC104 expected here (lock is not a timeout)
            return await self._reader.readline()  # BUG: ASYNC104 expected here
