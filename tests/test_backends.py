"""Tests for the correlation-aware backend layer of the engine.

The core contract: the planner must route every correlation model
through its backend and produce rankings *bitwise identical* to the
legacy per-model entry points (``rank_independent``, ``rank_tree``,
``rank_markov_network``) — cold cache, warm cache, mixed batches and
sweeps alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PRF,
    Engine,
    LinearCombinationPRFe,
    PRFOmega,
    PRFe,
    ProbabilisticRelation,
    Tuple,
)
from repro.algorithms.independent import rank_independent
from repro.andxor.generating import positional_distribution
from repro.andxor.ranking import rank_tree
from repro.andxor.tree import AndXorTree
from repro.core.weights import NDCGDiscountWeight, StepWeight
from repro.datasets.synthetic import TreeShape, generate_random_tree, syn_high, syn_xor
from repro.engine import dataset_fingerprint, network_fingerprint, tree_fingerprint
from repro.graphical import Factor, MarkovChainRelation, MarkovNetworkRelation
from repro.graphical.ranking import rank_distribution_markov, rank_markov_network

FAMILY = [
    pytest.param(PRFe(0.95), id="PRFe-real"),
    pytest.param(PRFe(0.5 + 0.25j), id="PRFe-complex"),
    pytest.param(PRFOmega(StepWeight(7)), id="PRFomega-step"),
    pytest.param(PRF(NDCGDiscountWeight()), id="PRF-general"),
    pytest.param(
        LinearCombinationPRFe([0.6, 0.4j], [0.9, 0.4 + 0.1j]), id="LinearCombinationPRFe"
    ),
]


def random_tree(rng: np.random.Generator, n: int | None = None) -> AndXorTree:
    n = int(rng.integers(4, 28)) if n is None else n
    shape = TreeShape(
        height=int(rng.integers(3, 6)),
        max_degree=int(rng.integers(2, 5)),
        xor_to_and_ratio=float(rng.uniform(0.3, 3.0)),
    )
    return generate_random_tree(n, shape, rng=int(rng.integers(0, 2**31)))


def random_network(rng: np.random.Generator, n: int | None = None) -> MarkovNetworkRelation:
    """A small random Markov chain network (bounded treewidth by design)."""
    n = int(rng.integers(2, 8)) if n is None else n
    tuples = [Tuple(f"t{i}", float(rng.uniform(0.0, 100.0)), 1.0) for i in range(n)]
    transitions = []
    for _ in range(n - 1):
        stay_absent = rng.uniform(0.2, 0.9)
        stay_present = rng.uniform(0.2, 0.9)
        transitions.append(
            np.array([[stay_absent, 1 - stay_absent], [1 - stay_present, stay_present]])
        )
    chain = MarkovChainRelation(tuples, float(rng.uniform(0.2, 0.8)), transitions)
    return chain.to_markov_network()


def assert_bitwise_equal(result, reference, context=""):
    assert result.tids() == reference.tids(), context
    assert [item.value for item in result] == [item.value for item in reference], context


class TestAndXorBackendEquivalence:
    @pytest.mark.parametrize("rf", FAMILY)
    def test_engine_matches_rank_tree_bitwise(self, rf):
        rng = np.random.default_rng(101)
        engine = Engine()
        for _ in range(12):
            tree = random_tree(rng)
            assert_bitwise_equal(
                engine.rank(tree, rf), rank_tree(tree, rf), context=tree.name
            )

    @pytest.mark.parametrize("rf", FAMILY)
    def test_warm_cache_stays_bitwise_identical(self, rf):
        tree = syn_high(40, rng=7)
        engine = Engine()
        engine.rank(tree, rf)  # populate the cache
        assert_bitwise_equal(engine.rank(tree, rf), rank_tree(tree, rf))
        assert engine.cache_stats()["hits"] >= 1

    def test_rebuilt_tree_hits_cache_and_carries_own_tuples(self):
        rng = np.random.default_rng(5)
        first = random_tree(rng, n=10)
        second = generate_random_tree(10, TreeShape(3, 3, 1.0), rng=11)
        third = generate_random_tree(10, TreeShape(3, 3, 1.0), rng=11)
        assert tree_fingerprint(second) == tree_fingerprint(third)
        assert tree_fingerprint(first) != tree_fingerprint(second)
        engine = Engine()
        engine.rank(second, PRFe(0.9))
        result = engine.rank(third, PRFe(0.9))
        assert engine.cache_stats()["hits"] >= 1
        assert all(item.item is third.get(item.tid) for item in result)

    def test_positional_matrix_narrowing_is_exact(self):
        tree = syn_xor(30, rng=13)
        engine = Engine()
        ordered, wide = engine.positional_matrix(tree)
        _, narrow = engine.positional_matrix(tree, max_rank=6)
        assert np.array_equal(wide[:, :6], narrow)
        from repro.andxor.generating import positional_probabilities_tree

        ref_ordered, ref = positional_probabilities_tree(tree, max_rank=6)
        assert [t.tid for t in ordered] == [t.tid for t in ref_ordered]
        assert np.array_equal(narrow, ref)

    def test_rank_many_matches_per_spec_rank_tree(self):
        tree = syn_xor(25, rng=17)
        specs = [PRFe(0.5), PRFe(0.9), PRFOmega(StepWeight(5)), PRFe(0.5)]
        results = Engine().rank_many(tree, specs)
        for spec, result in zip(specs, results):
            assert_bitwise_equal(result, rank_tree(tree, spec), context=repr(spec))

    def test_rank_distribution_cold_and_warm(self):
        tree = syn_xor(12, rng=19)
        engine = Engine()
        tid = tree.sorted_tuples()[3].tid
        cold = engine.rank_distribution(tree, tid, max_rank=5)
        reference = positional_distribution(tree, tid, max_rank=5)
        assert np.allclose(cold, reference, atol=1e-12)
        engine.positional_matrix(tree)  # warm the full matrix
        warm = engine.rank_distribution(tree, tid, max_rank=5)
        assert np.allclose(warm, reference, atol=1e-12)


class TestMarkovBackendEquivalence:
    @pytest.mark.parametrize("rf", FAMILY)
    def test_engine_matches_rank_markov_network_bitwise(self, rf):
        rng = np.random.default_rng(211)
        engine = Engine()
        for _ in range(4):
            network = random_network(rng)
            assert_bitwise_equal(engine.rank(network, rf), rank_markov_network(network, rf))

    def test_warm_cache_stays_bitwise_identical(self):
        rng = np.random.default_rng(223)
        network = random_network(rng, n=6)
        engine = Engine()
        engine.rank(network, PRFe(0.9))
        assert_bitwise_equal(engine.rank(network, PRFe(0.9)), rank_markov_network(network, PRFe(0.9)))
        assert engine.cache_stats()["hits"] >= 1

    def test_disconnected_network_from_independent(self):
        relation = ProbabilisticRelation.from_pairs(
            [(9.0, 0.8), (7.0, 0.3), (4.0, 0.6), (2.0, 0.5)]
        )
        network = MarkovNetworkRelation.from_independent(relation)
        engine = Engine()
        result = engine.rank(network, PRFOmega(StepWeight(3)))
        reference = rank_independent(relation, PRFOmega(StepWeight(3)))
        assert result.tids() == reference.tids()
        values = [item.value for item in result]
        expected = [item.value for item in reference]
        assert np.allclose(values, expected, atol=1e-12)

    def test_marginals_match_bruteforce(self):
        rng = np.random.default_rng(229)
        network = random_network(rng, n=5)
        engine = Engine()
        marginals = engine.marginal_probabilities(network)
        brute = network.marginal_probabilities_bruteforce()
        for tid, probability in brute.items():
            assert marginals[tid] == pytest.approx(probability, abs=1e-9)

    def test_rank_distribution_reuses_cached_calibration(self):
        rng = np.random.default_rng(233)
        network = random_network(rng, n=6)
        engine = Engine()
        tid = network.sorted_tuples()[2].tid
        cold = engine.rank_distribution(network, tid)
        reference = rank_distribution_markov(network, tid)
        assert np.allclose(cold, reference, atol=1e-12)
        engine.positional_matrix(network)
        warm = engine.rank_distribution(network, tid)
        assert np.allclose(warm, reference, atol=1e-12)

    def test_network_fingerprint_is_content_based(self):
        tuples = [Tuple(f"t{i}", float(10 - i), 1.0) for i in range(3)]
        factors = [Factor.bernoulli(t.tid, 0.5) for t in tuples]
        a = MarkovNetworkRelation(tuples, factors)
        b = MarkovNetworkRelation(list(tuples), [f.copy() for f in factors])
        assert network_fingerprint(a) == network_fingerprint(b)
        different = MarkovNetworkRelation(
            tuples, [Factor.bernoulli(tuples[0].tid, 0.6)] + factors[1:]
        )
        assert network_fingerprint(a) != network_fingerprint(different)


class TestMixedModelBatches:
    def make_mixed(self, rng: np.random.Generator):
        mixed: list = []
        for index in range(4):
            n = int(rng.integers(2, 20))
            mixed.append(
                ProbabilisticRelation.from_arrays(
                    rng.uniform(0.0, 100.0, size=n),
                    rng.uniform(0.0, 1.0, size=n),
                    name=f"rel-{index}",
                )
            )
        mixed.append(random_tree(rng, n=12))
        mixed.append(random_network(rng, n=5))
        mixed.append(random_tree(rng, n=8))
        rng.shuffle(mixed)
        return mixed

    def reference(self, data, rf):
        if isinstance(data, ProbabilisticRelation):
            return rank_independent(data, rf)
        if isinstance(data, AndXorTree):
            return rank_tree(data, rf)
        return rank_markov_network(data, rf)

    @pytest.mark.parametrize(
        "rf",
        [
            pytest.param(PRFe(0.95), id="PRFe"),
            pytest.param(PRFOmega(StepWeight(5)), id="PRFomega"),
            pytest.param(PRF(NDCGDiscountWeight()), id="PRF-general"),
        ],
    )
    def test_mixed_batch_matches_legacy_per_model(self, rf):
        rng = np.random.default_rng(307)
        mixed = self.make_mixed(rng)
        results = Engine().rank_batch(mixed, rf)
        assert len(results) == len(mixed)
        for data, result in zip(mixed, results):
            reference = self.reference(data, rf)
            context = type(data).__name__
            if isinstance(data, ProbabilisticRelation) and not isinstance(rf, PRFe):
                # The stacked general-weight kernel truncates per-row dot
                # products differently from the streaming legacy loop (PR 1's
                # documented contract): identical rankings, values to 1e-9.
                assert result.tids() == reference.tids(), context
                values = np.asarray([item.value for item in result], dtype=complex)
                expected = np.asarray([item.value for item in reference], dtype=complex)
                assert np.allclose(values, expected, rtol=1e-9, atol=1e-12), context
            else:
                assert_bitwise_equal(result, reference, context=context)

    def test_mixed_batch_preserves_input_order(self):
        rng = np.random.default_rng(311)
        mixed = self.make_mixed(rng)
        results = Engine().rank_batch(mixed, PRFe(0.9))
        expected_sizes = [len(data) for data in mixed]
        assert [len(result) for result in results] == expected_sizes

    def test_warm_mixed_batch_is_bitwise_stable(self):
        rng = np.random.default_rng(313)
        mixed = self.make_mixed(rng)
        engine = Engine()
        first = engine.rank_batch(mixed, PRFe(0.9))
        second = engine.rank_batch(mixed, PRFe(0.9))
        for a, b in zip(first, second):
            assert_bitwise_equal(a, b)
        stats = engine.cache_stats()
        assert stats["hits"] >= len(mixed)

    def test_rejects_unknown_batch_items(self):
        with pytest.raises(TypeError, match="ProbabilisticRelation"):
            Engine().rank_batch([object()], PRFe(0.9))


class TestPlanner:
    def test_plan_picks_model_and_algorithm(self):
        engine = Engine()
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6)])
        tree = syn_xor(6, rng=3)
        network = random_network(np.random.default_rng(3), n=3)
        assert engine.plan(relation, PRFe(0.9)).model == "independent"
        assert "Algorithm 3" in engine.plan(tree, PRFe(0.9)).algorithm
        assert "generating-function" in engine.plan(tree, PRF(NDCGDiscountWeight())).algorithm
        assert engine.plan(network, PRFe(0.9)).model == "markov"

    def test_backend_for_rejects_unknown_types(self):
        with pytest.raises(TypeError, match="AndXorTree"):
            Engine().backend_for(42)

    def test_dataset_fingerprint_dispatch(self):
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5)])
        tree = syn_xor(4, rng=5)
        network = random_network(np.random.default_rng(5), n=3)
        fingerprints = {dataset_fingerprint(d) for d in (relation, tree, network)}
        assert len(fingerprints) == 3
        with pytest.raises(TypeError):
            dataset_fingerprint("nope")

    def test_sorted_tuples_and_marginals_all_models(self):
        engine = Engine()
        tree = syn_xor(8, rng=7)
        assert [t.tid for t in engine.sorted_tuples(tree)] == [
            t.tid for t in tree.sorted_tuples()
        ]
        marginals = engine.marginal_probabilities(tree)
        assert marginals == pytest.approx(tree.marginal_probabilities())
        relation = ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6)])
        assert engine.marginal_probabilities(relation) == {
            t.tid: t.probability for t in relation
        }
