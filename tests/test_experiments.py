"""Integration tests: every experiment module runs end-to-end at tiny scale."""

import numpy as np
import pytest

from repro.datasets import generate_iip_like, syn_xor
from repro.experiments import (
    fig4_5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    format_table,
    table1,
    table3,
)
from repro.experiments.harness import ExperimentResult, Timer, format_series, timed


class TestHarness:
    def test_timed(self):
        value, elapsed = timed(lambda: 42)
        assert value == 42 and elapsed >= 0.0

    def test_timer_context(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_format_table_and_series(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="demo")
        assert "demo" in text and "2.5000" in text
        assert "x" in format_series("curve", [1, 2], ["x", "y"])

    def test_experiment_result_to_text(self):
        result = ExperimentResult("title", ["c1"], [[1.0]])
        assert "title" in result.to_text()


class TestTable1:
    def test_matrix_is_symmetric_with_zero_diagonal(self):
        results = table1.run(n=150, k=10, seed=3)
        assert len(results) == 2
        for result in results.values():
            labels = result.headers[1:]
            matrix = np.array([row[1:] for row in result.rows], dtype=float)
            assert np.allclose(matrix, matrix.T, atol=1e-9)
            assert np.allclose(np.diag(matrix), 0.0)
            assert matrix.max() <= 1.0 and matrix.min() >= 0.0
            assert len(labels) == 5


class TestFigures4And5:
    def test_stage_curves_keys(self):
        curves = fig4_5.stage_curves(support=80, num_terms=10)
        assert set(curves) == {"target", "DFT", "DFT+DF", "DFT+DF+IS", "DFT+DF+IS+ES"}

    def test_error_decreases_with_terms(self):
        errors = fig4_5.approximation_error_vs_terms(
            support=80, term_counts=(5, 40), families={"step": fig4_5.step_weight}
        )
        series = errors["step"]
        assert series[-1][1] <= series[0][1]

    def test_run_functions_produce_tables(self):
        assert len(fig4_5.run_figure4(support=60, num_terms=8).rows) > 0
        assert len(fig4_5.run_figure5(support=60, term_counts=(5, 10)).rows) == 2


class TestFigure6:
    def test_single_crossing_metadata(self):
        result = fig6.run(num_points=21)
        assert result.metadata["max_order_changes"] <= 1
        assert len(result.rows) == 21


class TestFigure7:
    def test_curves_have_valleys(self):
        relation = generate_iip_like(200, rng=5)
        result = fig7.run(relation, k=20, num_points=30, dataset_name="tiny")
        minima = result.metadata["minima"]
        # Some alpha brings PRFe close to PT(h); agreement with the pure
        # probability ranking needs alpha -> 1, beyond this short grid, so the
        # Prob curve is only checked for monotone improvement towards alpha = 1.
        assert minima["PT(h)"][1] < 0.3
        prob_curve = [row[result.headers.index("Prob")] for row in result.rows]
        assert prob_curve[-1] <= prob_curve[0]
        # ... and no alpha makes PRFe close to nothing: the curves do vary.
        pt_curve = [row[result.headers.index("PT(h)")] for row in result.rows]
        assert max(pt_curve) > min(pt_curve)

    def test_alpha_grid(self):
        grid = fig7.alpha_grid(10)
        assert grid[0] == 0.0 and grid[-1] < 1.0
        assert np.all(np.diff(grid) > 0)


class TestFigure8:
    def test_panel_i_quality_improves_with_terms(self):
        result = fig8.run_panel_i(n=300, support=30, k=30, term_counts=(5, 40), seed=3)
        full_pipeline = [row[-1] for row in result.rows]  # DFT+DF+IS+ES column
        assert full_pipeline[-1] <= full_pipeline[0] + 1e-9

    def test_panel_ii_runs(self):
        result = fig8.run_panel_ii(sizes=(200, 400), support=20, k=20, term_counts=(10,), seed=5)
        assert len(result.rows) == 1
        assert len(result.headers) == 1 + 6  # L column + 3 families x 2 sizes


class TestFigure9:
    def test_panel_i_learns_prfe_perfectly(self):
        result = fig9.run_panel_i(n=400, k=20, sample_sizes=(100, 200), seed=7)
        distances = dict(zip(result.headers[1:], result.rows[-1][1:]))
        assert distances["PRFe(0.95)"] < 0.1

    def test_panel_ii_runs(self):
        result = fig9.run_panel_ii(n=300, k=15, sample_sizes=(30,), seed=9)
        assert len(result.rows) == 1
        assert all(0.0 <= value <= 1.0 for value in result.rows[0][1:])


class TestFigure10:
    def test_correlation_gap_curves(self):
        tree = syn_xor(80, rng=3)
        gaps = fig10.correlation_gap_prfe(tree, alphas=[0.2, 0.9], k=10)
        assert all(0.0 <= gap <= 1.0 for _, gap in gaps)

    def test_panel_runs(self):
        panel_i = fig10.run_panel_i(n=60, k=10, alphas=[0.3, 0.9], seed=3)
        assert len(panel_i.rows) == 2
        panel_ii = fig10.run_panel_ii(n=60, k=10, seed=3)
        assert len(panel_ii.rows) == 4


class TestFigure11AndTable3:
    def test_timing_panels_run(self):
        panel_i = fig11.run_panel_i(sizes=(200,), ks=(10,), seed=3)
        assert len(panel_i.rows) == 1
        panel_ii = fig11.run_panel_ii(sizes=(200,), h=20, k=20, term_counts=(5,), seed=3)
        assert len(panel_ii.rows) == 1
        panel_iii = fig11.run_panel_iii(sizes=(60,), h=10, k=10, term_counts=(5,), seed=3)
        assert len(panel_iii.rows) == 2
        for result in (panel_i, panel_ii, panel_iii):
            for row in result.rows:
                assert all(value >= 0.0 for value in row if isinstance(value, float))

    def test_table3_exponent_fit(self):
        assert table3.fit_exponent([1000, 2000, 4000], [0.1, 0.2, 0.4]) == pytest.approx(
            1.0, abs=0.05
        )

    def test_table3_runs(self):
        result = table3.run(sizes=(200, 400), k=10, seed=3)
        assert len(result.rows) == len(table3.ALGORITHMS)
