"""Tests for the Monte-Carlo estimators."""

import numpy as np
import pytest

from repro import PRFe, ProbabilisticRelation
from repro.algorithms.independent import positional_probabilities, prfe_values
from repro.algorithms.montecarlo import (
    estimate_prf_values,
    estimate_rank_distributions,
    estimate_topk_set_probabilities,
    rank_by_monte_carlo,
    standard_error,
)
from repro.core.possible_worlds import enumerate_worlds, sample_worlds


@pytest.fixture
def relation():
    return ProbabilisticRelation.from_pairs(
        [(10, 0.8), (9, 0.4), (8, 0.6), (7, 0.3), (6, 0.9)]
    )


class TestEstimators:
    def test_rank_distribution_estimates_close_to_exact(self, relation):
        worlds = list(sample_worlds(relation, 8000, rng=5))
        estimates = estimate_rank_distributions(worlds, [t.tid for t in relation], max_rank=5)
        ordered, exact = positional_probabilities(relation)
        for i, t in enumerate(ordered):
            assert np.allclose(estimates[t.tid][1:], exact[i], atol=0.04)

    def test_exact_worlds_give_exact_estimates(self, relation):
        worlds = enumerate_worlds(relation)
        estimates = estimate_rank_distributions(worlds, ["t1"], max_rank=5)
        _, exact = positional_probabilities(relation)
        assert np.allclose(estimates["t1"][1:], exact[0], atol=1e-12)

    def test_prf_value_estimates(self, relation):
        worlds = enumerate_worlds(relation)
        values = estimate_prf_values(worlds, list(relation), PRFe(0.7))
        ordered, exact = prfe_values(relation, 0.7)
        for t, value in zip(ordered, exact):
            assert values[t.tid] == pytest.approx(value, abs=1e-12)

    def test_rank_by_monte_carlo_recovers_exact_order(self, relation):
        worlds = enumerate_worlds(relation)
        result = rank_by_monte_carlo(worlds, list(relation), PRFe(0.7))
        from repro import rank

        exact = rank(relation, PRFe(0.7))
        assert result.tids() == exact.tids()

    def test_topk_set_probabilities_sum_to_one(self, relation):
        worlds = enumerate_worlds(relation)
        totals = estimate_topk_set_probabilities(worlds, 2)
        assert sum(totals.values()) == pytest.approx(1.0)

    def test_topk_set_requires_positive_k(self, relation):
        with pytest.raises(ValueError):
            estimate_topk_set_probabilities(enumerate_worlds(relation), 0)

    def test_standard_error(self):
        assert standard_error(0.5, 100) == pytest.approx(0.05)
        assert standard_error(0.5, 0) == float("inf")
