"""Tests for the ``repro.analysis`` static-analysis subsystem.

The contracts under test:

* each checker catches its PR-8-shaped true positive in the ``bug_*``
  fixtures (with exact checker ids on the marked lines);
* every ``clean_*`` fixture produces **zero** findings — the false-
  positive budget of the CI gate is exactly zero;
* pragmas suppress findings on their line, unused pragmas are reported
  (SUP001), and the committed-baseline flow demotes legacy findings
  without hiding new ones;
* the CLI prints ``file:line:CHECKER-ID message`` and exits 0/1/2;
* the repo's own ``src/`` tree passes the gate — the same invariant CI
  enforces, kept under plain pytest so it cannot rot silently.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CHECKERS,
    Finding,
    load_baseline,
    parse_pragmas,
    run_analysis,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parent.parent


def analyze(*names: str, baseline: Path | None = None):
    return run_analysis([FIXTURES / name for name in names], baseline_path=baseline)


def ids_by_line(report) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for finding in report.findings:
        out.setdefault(finding.line, set()).add(finding.checker_id)
    return out


def expected_bug_lines(name: str, checker_id: str) -> list[int]:
    """Lines in a fixture carrying a same-line ``BUG: <ID> expected here`` marker."""
    return [
        lineno
        for lineno, text in enumerate((FIXTURES / name).read_text().splitlines(), 1)
        if "BUG:" in text and checker_id in text
    ]


# ----------------------------------------------------------------------
# True positives: each checker catches its PR-8-shaped bug fixture
# ----------------------------------------------------------------------
class TestTruePositives:
    def test_lock_mixed_fixture_flags_every_unlocked_sibling(self):
        """The HotSpotTracker/ServiceStats shape: unlocked siblings flagged."""
        report = analyze("bug_lock_mixed.py")
        flagged = ids_by_line(report)
        for line in expected_bug_lines("bug_lock_mixed.py", "LOCK201"):
            assert "LOCK201" in flagged.get(line, set()), f"line {line} not flagged"
        assert all(ids == {"LOCK201"} for ids in flagged.values())

    def test_unretained_window_task_fixture(self):
        """The PR-8 unresolved-window-future shape: both spawn styles flagged."""
        report = analyze("bug_async_unretained.py")
        flagged = ids_by_line(report)
        expected = expected_bug_lines("bug_async_unretained.py", "ASYNC102")
        assert len(expected) == 2
        for line in expected:
            assert "ASYNC102" in flagged.get(line, set()), f"line {line} not flagged"

    def test_blocking_calls_fixture(self):
        report = analyze("bug_async_blocking.py")
        flagged = ids_by_line(report)
        for line in expected_bug_lines("bug_async_blocking.py", "ASYNC101"):
            assert "ASYNC101" in flagged.get(line, set()), f"line {line} not flagged"

    def test_blocking_call_traced_through_self_helper(self):
        """pickle.dumps hidden one `self` helper away is still caught."""
        report = analyze("bug_async_blocking.py")
        messages = [f.message for f in report.findings if f.checker_id == "ASYNC101"]
        assert any("self._serialize" in m for m in messages)

    def test_lock_across_await_fixture(self):
        report = analyze("bug_async_lock_held.py")
        flagged = ids_by_line(report)
        for line in expected_bug_lines("bug_async_lock_held.py", "ASYNC103"):
            assert "ASYNC103" in flagged.get(line, set())

    def test_unbounded_await_fixture(self):
        """Bare network/queue awaits flagged; timeout-free async-with is no guard."""
        report = analyze("bug_async_unbounded.py")
        flagged = ids_by_line(report)
        expected = expected_bug_lines("bug_async_unbounded.py", "ASYNC104")
        assert len(expected) == 8
        for line in expected:
            assert "ASYNC104" in flagged.get(line, set()), f"line {line} not flagged"
        assert all(ids == {"ASYNC104"} for ids in flagged.values())

    @pytest.mark.parametrize("checker_id", ["DET301", "DET302", "DET303", "DET304"])
    def test_determinism_fixture(self, checker_id):
        report = analyze("bug_determinism.py")
        flagged = ids_by_line(report)
        expected = expected_bug_lines("bug_determinism.py", checker_id)
        assert expected, f"fixture lost its {checker_id} marker"
        for line in expected:
            assert checker_id in flagged.get(line, set()), f"line {line} not flagged"

    def test_resource_leak_fixture(self):
        report = analyze("bug_resource_leak.py")
        flagged = ids_by_line(report)
        for line in expected_bug_lines("bug_resource_leak.py", "RES401"):
            assert "RES401" in flagged.get(line, set()), f"line {line} not flagged"


# ----------------------------------------------------------------------
# False positives: clean fixtures must produce zero findings
# ----------------------------------------------------------------------
class TestZeroFalsePositives:
    @pytest.mark.parametrize(
        "fixture",
        [
            "clean_async.py",
            "clean_async_timeout.py",
            "clean_lock.py",
            "clean_determinism.py",
            "clean_resources.py",
        ],
    )
    def test_clean_fixture_is_clean(self, fixture):
        report = analyze(fixture)
        assert report.findings == [], [f.render() for f in report.findings]

    def test_clean_fixtures_are_clean_under_cross_file_registry(self):
        """Analysing everything together must not create new findings in clean files."""
        report = run_analysis([FIXTURES])
        clean = [f for f in report.findings if Path(f.path).name.startswith("clean_")]
        assert clean == [], [f.render() for f in clean]


# ----------------------------------------------------------------------
# Pragmas and baseline
# ----------------------------------------------------------------------
class TestSuppression:
    def test_pragma_suppresses_finding_on_its_line(self, tmp_path):
        src = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)  # repro: ignore[ASYNC101]\n"
        )
        path = tmp_path / "mod.py"
        path.write_text(src)
        report = run_analysis([path])
        assert report.findings == []
        assert [f.checker_id for f in report.suppressed] == ["ASYNC101"]

    def test_unused_pragma_is_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # repro: ignore[ASYNC101]\n")
        report = run_analysis([path])
        assert [f.checker_id for f in report.findings] == ["SUP001"]
        assert "ASYNC101" in report.findings[0].message

    def test_pragma_for_a_different_checker_does_not_suppress(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\nasync def f():\n    time.sleep(1)  # repro: ignore[DET301]\n"
        )
        report = run_analysis([path])
        ids = {f.checker_id for f in report.findings}
        assert "ASYNC101" in ids  # the real finding survives
        assert "SUP001" in ids  # and the mismatched pragma is called out

    def test_multiple_ids_in_one_pragma(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "async def f(tids: set):\n"
            "    time.sleep(1), list(tids)  # repro: ignore[ASYNC101, DET302]\n"
        )
        report = run_analysis([path])
        assert report.findings == []
        assert {f.checker_id for f in report.suppressed} == {"ASYNC101", "DET302"}

    def test_parse_pragmas_shapes(self):
        table = parse_pragmas("a\nb  # repro: ignore[LOCK201,DET301]\n")
        assert table.by_line == {2: {"LOCK201", "DET301"}}


class TestBaseline:
    def test_baseline_demotes_known_findings_but_not_new_ones(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\nasync def f():\n    time.sleep(1)\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, run_analysis([path]).findings)
        report = run_analysis([path], baseline_path=baseline)
        assert report.findings == []
        assert [f.checker_id for f in report.baselined] == ["ASYNC101"]
        # A new defect in the same file still fails the gate.
        path.write_text(
            "import time, pickle\nasync def f():\n    time.sleep(1)\n"
            "    pickle.dumps(f)\n"
        )
        report = run_analysis([path], baseline_path=baseline)
        assert len(report.findings) == 1
        assert "pickle.dumps" in report.findings[0].message

    def test_baseline_keys_survive_line_drift(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\nasync def f():\n    time.sleep(1)\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, run_analysis([path]).findings)
        # Shift the finding down ten lines: the baseline still matches.
        path.write_text("import time\n" + "\n" * 10 + "async def f():\n    time.sleep(1)\n")
        report = run_analysis([path], baseline_path=baseline)
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_stale_baseline_entries_are_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\nasync def f():\n    time.sleep(1)\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(
            baseline,
            run_analysis([path]).findings
            + [Finding("gone.py", 1, "DET301", "long fixed")],
        )
        report = run_analysis([path], baseline_path=baseline)
        assert report.findings == []
        assert report.stale_baseline == ["gone.py::DET301::long fixed"]

    def test_load_baseline_rejects_garbage(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_baseline(bad)


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, *args: str, cwd: Path | None = None):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd or REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_findings_print_as_file_line_checker_message(self):
        proc = self.run_cli(str(FIXTURES / "bug_determinism.py"), "--no-baseline")
        assert proc.returncode == 1
        line = proc.stdout.splitlines()[0]
        path, lineno, rest = line.split(":", 2)
        assert path.endswith("bug_determinism.py")
        assert lineno.isdigit()
        assert rest.split(" ", 1)[0].startswith(("DET", "ASYNC", "LOCK", "RES"))

    def test_clean_input_exits_zero(self):
        proc = self.run_cli(str(FIXTURES / "clean_lock.py"), "--no-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout.strip() == ""

    def test_missing_path_exits_two(self):
        proc = self.run_cli("definitely/not/a/path")
        assert proc.returncode == 2

    def test_select_restricts_checkers(self):
        proc = self.run_cli(
            str(FIXTURES / "bug_determinism.py"), "--no-baseline", "--select", "DET304"
        )
        assert proc.returncode == 1
        ids = {line.split(":", 2)[2].split(" ")[0] for line in proc.stdout.splitlines()}
        assert ids == {"DET304"}

    def test_json_output(self):
        proc = self.run_cli(
            str(FIXTURES / "bug_resource_leak.py"), "--no-baseline", "--json"
        )
        doc = json.loads(proc.stdout)
        assert proc.returncode == 1
        assert all(f["checker_id"] == "RES401" for f in doc["findings"])
        assert doc["files_checked"] == 1

    def test_write_baseline_then_gate_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        proc = self.run_cli(
            str(FIXTURES / "bug_lock_mixed.py"), "--baseline", str(baseline),
            "--write-baseline",
        )
        assert proc.returncode == 0, proc.stderr
        proc = self.run_cli(
            str(FIXTURES / "bug_lock_mixed.py"), "--baseline", str(baseline)
        )
        assert proc.returncode == 0, proc.stdout
        assert "baselined" in proc.stderr

    def test_list_checkers_covers_catalogue(self):
        proc = self.run_cli("--list-checkers")
        assert proc.returncode == 0
        for cls in ALL_CHECKERS:
            assert cls.id in proc.stdout


# ----------------------------------------------------------------------
# The repo's own gate
# ----------------------------------------------------------------------
class TestRepoGate:
    def test_src_tree_passes_the_gate(self, monkeypatch):
        """The invariant CI enforces, kept under plain pytest too.

        Runs from the repo root (baseline keys are cwd-relative) against
        the committed baseline, and insists the baseline carries no
        stale entries — legacy ASYNC104 waits stay visible, fixed ones
        must be pruned.
        """
        monkeypatch.chdir(REPO_ROOT)
        report = run_analysis(
            [Path("src")], baseline_path=Path("analysis-baseline.json")
        )
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.stale_baseline == []

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = run_analysis([path])
        assert [f.checker_id for f in report.findings] == ["PARSE000"]
