"""Tests for U-Top and the consensus-answer view of PRFomega (Theorems 2 and 3)."""

import itertools

import pytest

from repro import ProbabilisticRelation
from repro.baselines import (
    consensus_topk,
    expected_symmetric_difference,
    expected_weighted_distance,
    pt_topk,
    topk_answer_probability,
    u_topk,
    u_topk_independent,
    u_topk_monte_carlo,
)
from repro.core.possible_worlds import enumerate_worlds
from tests.conftest import random_relation, random_small_tree


def _bruteforce_u_topk(relation: ProbabilisticRelation, k: int):
    """Most probable top-k prefix set by explicit world enumeration."""
    worlds = enumerate_worlds(relation)
    totals: dict = {}
    for world in worlds:
        prefix = world.top_k(k)
        if len(prefix) == k:
            totals[prefix] = totals.get(prefix, 0.0) + world.probability
    return max(totals.items(), key=lambda pair: pair[1])


class TestUTopIndependent:
    def test_matches_bruteforce_on_random_relations(self, rng):
        for _ in range(8):
            relation = random_relation(8, rng, allow_certain=False)
            for k in (1, 2, 3):
                answer, probability = u_topk_independent(relation, k)
                exact_answer, exact_probability = _bruteforce_u_topk(relation, k)
                assert probability == pytest.approx(exact_probability, abs=1e-9)
                assert tuple(answer) == exact_answer

    def test_answer_probability_helper(self, rng):
        relation = random_relation(6, rng, allow_certain=False)
        answer, probability = u_topk_independent(relation, 2)
        assert topk_answer_probability(relation, answer) == pytest.approx(probability)

    def test_k_validation(self, rng):
        relation = random_relation(4, rng)
        with pytest.raises(ValueError):
            u_topk_independent(relation, 0)
        with pytest.raises(ValueError):
            u_topk_independent(relation, 10)

    def test_certain_prefix_is_the_answer(self):
        relation = ProbabilisticRelation.from_pairs([(5, 1.0), (4, 1.0), (3, 0.2)])
        answer, probability = u_topk_independent(relation, 2)
        assert answer == ["t1", "t2"]
        assert probability == pytest.approx(1.0)

    def test_unknown_answer_member_rejected(self, rng):
        relation = random_relation(4, rng)
        with pytest.raises(KeyError):
            topk_answer_probability(relation, ["bogus"])


class TestUTopCorrelated:
    def test_monte_carlo_matches_enumeration_mode(self, rng):
        tree = random_small_tree(rng, num_leaves=6)
        worlds = tree.enumerate_worlds()
        totals: dict = {}
        for world in worlds:
            totals[world.top_k(2)] = totals.get(world.top_k(2), 0.0) + world.probability
        exact_best = max(totals.values())
        answer, probability = u_topk_monte_carlo(tree, 2, num_samples=8000, rng=5)
        assert probability == pytest.approx(totals.get(tuple(answer), 0.0), abs=0.05)
        assert totals.get(tuple(answer), 0.0) >= exact_best - 0.05

    def test_u_topk_dispatch(self, rng):
        relation = random_relation(6, rng)
        tree = random_small_tree(rng, num_leaves=6)
        assert isinstance(u_topk(relation, 2), list)
        assert isinstance(u_topk(tree, 2, num_samples=500, rng=1), list)


class TestConsensusTheorems:
    def test_theorem2_pt_k_minimizes_symmetric_difference(self, rng):
        """PT(k) is the consensus top-k under symmetric difference (Theorem 2)."""
        for _ in range(5):
            relation = random_relation(6, rng, allow_certain=False)
            k = 2
            worlds = enumerate_worlds(relation)
            optimal = set(pt_topk(relation, k, h=k))
            optimal_cost = expected_symmetric_difference(worlds, optimal, k)
            for candidate in itertools.combinations([t.tid for t in relation], k):
                cost = expected_symmetric_difference(worlds, candidate, k)
                assert optimal_cost <= cost + 1e-9

    def test_theorem3_prfomega_minimizes_weighted_difference(self, rng):
        """PRFomega's top-k minimizes the expected weighted symmetric difference."""
        weights = [5.0, 2.0, 0.5]
        for _ in range(5):
            relation = random_relation(6, rng, allow_certain=False)
            k = len(weights)
            worlds = enumerate_worlds(relation)
            optimal = consensus_topk(relation, k, weights=weights)
            optimal_cost = expected_weighted_distance(worlds, optimal, k, weights)
            for candidate in itertools.combinations([t.tid for t in relation], k):
                cost = expected_weighted_distance(worlds, candidate, k, weights)
                assert optimal_cost <= cost + 1e-9

    def test_consensus_defaults_to_pt(self, rng):
        relation = random_relation(8, rng)
        assert set(consensus_topk(relation, 3)) == set(pt_topk(relation, 3, h=3))

    def test_consensus_weight_validation(self, rng):
        relation = random_relation(5, rng)
        with pytest.raises(ValueError):
            consensus_topk(relation, 3, weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            consensus_topk(relation, 2, weights=[1.0, -2.0])

    def test_example6_expected_distance(self, figure1_tree):
        """Example 6 of the paper: E[dis_Delta({t2, t5}, topk(pw))] for k = 2.

        The paper sums .072 * 4 for world pw4 = {t1, t5, t6, t3}, but the top-2
        of that world is {t1, t5} which shares t5 with the answer, so its
        symmetric difference is 2 (the printed 4 is a typo in the example);
        the corrected expectation is 1.736.
        """
        worlds = figure1_tree.enumerate_worlds()
        cost = expected_symmetric_difference(worlds, ["t2", "t5"], 2)
        expected = (
            0.112 * 2 + 0.168 * 2 + 0.048 * 4 + 0.072 * 2
            + 0.168 * 2 + 0.252 * 0 + 0.072 * 4 + 0.108 * 2
        )
        assert cost == pytest.approx(expected, abs=1e-9)
        # {t2, t5} is indeed the consensus answer: it coincides with PT(2).
        assert set(pt_topk(figure1_tree, 2, h=2)) == {"t2", "t5"}
