"""Tests for the and/xor tree model (construction, worlds, marginals)."""

import pytest

from repro import AndNode, AndXorTree, LeafNode, ProbabilisticRelation, Tuple, XorNode
from repro.core.possible_worlds import PossibleWorld
from tests.conftest import random_small_tree


class TestConstruction:
    def test_leaf_count_and_height(self, figure1_tree):
        assert len(figure1_tree) == 6
        assert figure1_tree.height() == 3

    def test_duplicate_leaf_ids_rejected(self):
        with pytest.raises(ValueError):
            AndXorTree(AndNode([LeafNode(Tuple("a", 1, 1.0)), LeafNode(Tuple("a", 2, 1.0))]))

    def test_xor_probabilities_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            XorNode([(0.7, LeafNode(Tuple("a", 1, 1.0))), (0.6, LeafNode(Tuple("b", 2, 1.0)))])

    def test_xor_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            XorNode([(-0.1, LeafNode(Tuple("a", 1, 1.0)))])

    def test_and_node_requires_children(self):
        with pytest.raises(ValueError):
            AndNode([])

    def test_leaf_depths(self, figure1_tree):
        depths = figure1_tree.leaf_depths()
        assert set(depths.values()) == {2}

    def test_sorted_tuples_descending_scores(self, figure1_tree):
        scores = [t.score for t in figure1_tree.sorted_tuples()]
        assert scores == sorted(scores, reverse=True)

    def test_get_leaf(self, figure1_tree):
        assert figure1_tree.get("t4").score == 95.0
        with pytest.raises(KeyError):
            figure1_tree.get("zzz")


class TestWorlds:
    def test_figure1_world_probabilities(self, figure1_tree):
        worlds = {w.tids(): w.probability for w in figure1_tree.enumerate_worlds()}
        # Figure 1 lists pw1 = {t2, t1, t6, t4} with probability .112 and
        # pw6 = {t2, t5, t6} with probability .252 (tuples sorted by speed).
        assert worlds[("t2", "t1", "t6", "t4")] == pytest.approx(0.112)
        assert worlds[("t2", "t5", "t6")] == pytest.approx(0.252)
        assert len(worlds) == 8
        assert sum(worlds.values()) == pytest.approx(1.0)

    def test_figure2_world_probabilities(self, figure2_tree):
        worlds = {w.tids(): w.probability for w in figure2_tree.enumerate_worlds()}
        assert worlds[("t3@2", "t1@2")] == pytest.approx(0.3)
        assert worlds[("t2@3", "t4@3", "t5@3")] == pytest.approx(0.4)
        assert len(worlds) == 3

    def test_enumeration_merges_identical_worlds(self):
        leaf = LeafNode(Tuple("a", 1, 1.0))
        tree = AndXorTree(XorNode([(0.4, leaf)]))
        worlds = tree.enumerate_worlds()
        assert len(worlds) == 2  # {a} and {}
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)

    def test_enumeration_limit(self, rng):
        tree = random_small_tree(rng, num_leaves=6)
        with pytest.raises(ValueError):
            tree.enumerate_worlds(max_worlds=1)

    def test_sampling_matches_enumeration(self, figure1_tree):
        exact = {w.tids(): w.probability for w in figure1_tree.enumerate_worlds()}
        counts: dict = {}
        for world in figure1_tree.sample_worlds(6000, rng=3):
            counts[world.tids()] = counts.get(world.tids(), 0.0) + world.probability
        for key, probability in exact.items():
            assert counts.get(key, 0.0) == pytest.approx(probability, abs=0.04)

    def test_sample_world_single(self, figure1_tree):
        world = figure1_tree.sample_world(rng=1)
        assert "t6" in world  # t6 is certain


class TestMarginalsAndViews:
    def test_figure1_marginals(self, figure1_tree):
        marginals = figure1_tree.marginal_probabilities()
        assert marginals["t1"] == pytest.approx(0.4)
        assert marginals["t2"] == pytest.approx(0.7)
        assert marginals["t6"] == pytest.approx(1.0)

    def test_marginals_match_enumeration(self, rng):
        for _ in range(5):
            tree = random_small_tree(rng, num_leaves=7)
            worlds = tree.enumerate_worlds()
            marginals = tree.marginal_probabilities()
            for t in tree.tuples():
                exact = sum(w.probability for w in worlds if t.tid in w)
                assert marginals[t.tid] == pytest.approx(exact, abs=1e-9), t.tid

    def test_to_relation_keeps_scores_and_marginals(self, figure1_tree):
        relation = figure1_tree.to_relation()
        assert len(relation) == 6
        assert relation.get("t5").probability == pytest.approx(0.6)
        assert relation.get("t5").score == 110.0


class TestConstructors:
    def test_from_independent_equivalence(self, rng):
        relation = ProbabilisticRelation.from_pairs([(5, 0.3), (4, 0.8), (3, 0.5)])
        tree = AndXorTree.from_independent(relation)
        marginals = tree.marginal_probabilities()
        for t in relation:
            assert marginals[t.tid] == pytest.approx(t.probability)
        worlds = tree.enumerate_worlds()
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)

    def test_from_x_tuples_mutual_exclusion(self):
        groups = [
            [Tuple("a1", 5, 0.4), Tuple("a2", 4, 0.5)],
            [Tuple("b1", 3, 0.9)],
        ]
        tree = AndXorTree.from_x_tuples(groups)
        for world in tree.enumerate_worlds():
            assert not ("a1" in world and "a2" in world)

    def test_from_x_tuples_empty_group_rejected(self):
        with pytest.raises(ValueError):
            AndXorTree.from_x_tuples([[]])

    def test_from_possible_worlds_roundtrip(self):
        worlds = [
            PossibleWorld((Tuple("x", 5, 1.0), Tuple("y", 3, 1.0)), 0.25),
            PossibleWorld((Tuple("x", 5, 1.0),), 0.35),
            PossibleWorld((), 0.4),
        ]
        tree = AndXorTree.from_possible_worlds(worlds)
        rebuilt = tree.enumerate_worlds()
        probabilities = sorted(w.probability for w in rebuilt)
        assert probabilities == pytest.approx([0.25, 0.35, 0.4])

    def test_from_possible_worlds_overweight_rejected(self):
        worlds = [
            PossibleWorld((Tuple("x", 5, 1.0),), 0.8),
            PossibleWorld((Tuple("y", 5, 1.0),), 0.6),
        ]
        with pytest.raises(ValueError):
            AndXorTree.from_possible_worlds(worlds)
