"""Tests for the dataset generators and the import/export round-trips."""

import numpy as np
import pytest

from repro import ProbabilisticRelation, Tuple
from repro.datasets import (
    CONFIDENCE_LEVELS,
    CONFIDENCE_PROBABILITIES,
    TreeShape,
    generate_iip_like,
    generate_independent,
    generate_random_tree,
    generate_x_tuples,
    load_relation_csv,
    load_tree_json,
    save_relation_csv,
    save_tree_json,
    syn_high,
    syn_low,
    syn_med,
    syn_xor,
)


class TestSyntheticGenerators:
    def test_independent_sizes_and_ranges(self):
        relation = generate_independent(200, rng=1)
        assert len(relation) == 200
        assert np.all(relation.probabilities() >= 0) and np.all(relation.probabilities() <= 1)
        assert np.all(relation.scores() >= 0) and np.all(relation.scores() <= 10_000)

    def test_independent_deterministic_with_seed(self):
        first = generate_independent(50, rng=3)
        second = generate_independent(50, rng=3)
        assert np.allclose(first.scores(), second.scores())

    def test_x_tuples_groups_are_exclusive(self):
        tree = generate_x_tuples(20, group_size=4, rng=2)
        assert len(tree) == 20
        assert tree.height() == 3
        # Within every xor group the marginals sum to at most one.
        from repro.andxor.tree import XorNode

        for node in tree.root.children_nodes():
            assert isinstance(node, XorNode)
            assert sum(p for p, _ in node.children) <= 1.0 + 1e-9

    def test_x_tuples_invalid_group_size(self):
        with pytest.raises(ValueError):
            generate_x_tuples(10, group_size=0)

    def test_random_tree_leaf_count_and_height(self):
        shape = TreeShape(height=4, max_degree=4, xor_to_and_ratio=2.0)
        tree = generate_random_tree(60, shape, rng=5)
        assert len(tree) == 60
        assert tree.height() <= shape.height + 1  # root + generated levels

    def test_random_tree_validation(self):
        with pytest.raises(ValueError):
            generate_random_tree(0, TreeShape(3, 2, 1.0))
        with pytest.raises(ValueError):
            generate_random_tree(5, TreeShape(1, 2, 1.0))

    def test_named_families(self):
        for factory in (syn_xor, syn_low, syn_med, syn_high):
            tree = factory(40, rng=7)
            assert len(tree) == 40
            worlds_probability = tree.marginal_probabilities()
            assert all(0 <= p <= 1 + 1e-9 for p in worlds_probability.values())

    def test_tree_shape_xor_probability(self):
        assert TreeShape(3, 2, float("inf")).xor_probability() == 1.0
        assert TreeShape(3, 2, 1.0).xor_probability() == pytest.approx(0.5)


class TestIcebergGenerator:
    def test_sizes_and_attributes(self):
        relation = generate_iip_like(300, rng=11)
        assert len(relation) == 300
        sample = relation[0]
        assert sample.attributes["confidence"] in CONFIDENCE_LEVELS
        assert "latitude" in sample.attributes

    def test_probabilities_follow_confidence_mapping(self):
        relation = generate_iip_like(500, rng=13, noise=0.0)
        for t in relation:
            expected = CONFIDENCE_PROBABILITIES[t.attributes["confidence"]]
            assert t.probability == pytest.approx(expected, abs=1e-9)

    def test_noise_breaks_ties(self):
        relation = generate_iip_like(200, rng=17)
        assert len(set(relation.probabilities().tolist())) > 7

    def test_scores_are_heavy_tailed_drift_days(self):
        relation = generate_iip_like(2000, rng=19)
        scores = relation.scores()
        assert scores.min() >= 0
        assert scores.max() <= 3000
        assert np.mean(scores) < np.percentile(scores, 90)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            generate_iip_like(-1)


class TestIO:
    def test_relation_csv_roundtrip(self, tmp_path):
        relation = ProbabilisticRelation(
            [
                Tuple("a", 3.5, 0.25, {"source": "VIS"}),
                Tuple("b", 1.0, 0.75, {"source": "RAD"}),
            ],
            name="demo",
        )
        path = save_relation_csv(relation, tmp_path / "relation.csv")
        loaded = load_relation_csv(path)
        assert len(loaded) == 2
        assert loaded.get("a").score == pytest.approx(3.5)
        assert loaded.get("a").probability == pytest.approx(0.25)
        assert loaded.get("b").attributes["source"] == "RAD"

    def test_relation_csv_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            load_relation_csv(path)

    def test_tree_json_roundtrip(self, tmp_path, figure1_tree):
        path = save_tree_json(figure1_tree, tmp_path / "tree.json")
        loaded = load_tree_json(path)
        assert len(loaded) == len(figure1_tree)
        original = {w.tids(): w.probability for w in figure1_tree.enumerate_worlds()}
        rebuilt = {w.tids(): w.probability for w in loaded.enumerate_worlds()}
        for key, probability in original.items():
            assert rebuilt[key] == pytest.approx(probability)

    def test_tree_json_bad_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "root": {"kind": "mystery"}}')
        with pytest.raises(ValueError):
            load_tree_json(path)
