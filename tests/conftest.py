"""Shared fixtures: the paper's worked examples and small random datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AndNode, AndXorTree, LeafNode, ProbabilisticRelation, Tuple, XorNode


@pytest.fixture
def example1_relation() -> ProbabilisticRelation:
    """Example 1 of the paper: three independent tuples, already score-sorted."""
    return ProbabilisticRelation.from_pairs([(3.0, 0.5), (2.0, 0.6), (1.0, 0.4)])


@pytest.fixture
def example7_relation() -> ProbabilisticRelation:
    """Example 7 of the paper: four independent tuples used for the PRFe curves."""
    return ProbabilisticRelation.from_pairs(
        [(100.0, 0.4), (80.0, 0.6), (50.0, 0.5), (30.0, 0.9)]
    )


@pytest.fixture
def figure1_tree() -> AndXorTree:
    """The speeding-cars database of Figure 1 as an and/xor tree.

    t2/t3 and t4/t5 are mutually exclusive; t1 exists with probability 0.4
    and t6 with probability 1.  Scores are the speeds.
    """
    t1 = Tuple("t1", 120.0, 1.0)
    t2 = Tuple("t2", 130.0, 1.0)
    t3 = Tuple("t3", 80.0, 1.0)
    t4 = Tuple("t4", 95.0, 1.0)
    t5 = Tuple("t5", 110.0, 1.0)
    t6 = Tuple("t6", 105.0, 1.0)
    return AndXorTree(
        AndNode(
            [
                XorNode([(0.4, LeafNode(t1))]),
                XorNode([(0.7, LeafNode(t2)), (0.3, LeafNode(t3))]),
                XorNode([(0.4, LeafNode(t4)), (0.6, LeafNode(t5))]),
                XorNode([(1.0, LeafNode(t6))]),
            ]
        ),
        name="figure1",
    )


@pytest.fixture
def figure2_tree() -> AndXorTree:
    """The highly correlated three-world database of Figure 2.

    Leaf identifiers are suffixed per world because the same logical tuple
    appears with different scores in different worlds.
    """
    world1 = AndNode(
        [
            LeafNode(Tuple("t3@1", 6.0, 1.0)),
            LeafNode(Tuple("t2@1", 5.0, 1.0)),
            LeafNode(Tuple("t1@1", 1.0, 1.0)),
        ]
    )
    world2 = AndNode(
        [LeafNode(Tuple("t3@2", 9.0, 1.0)), LeafNode(Tuple("t1@2", 7.0, 1.0))]
    )
    world3 = AndNode(
        [
            LeafNode(Tuple("t2@3", 8.0, 1.0)),
            LeafNode(Tuple("t4@3", 4.0, 1.0)),
            LeafNode(Tuple("t5@3", 3.0, 1.0)),
        ]
    )
    return AndXorTree(
        XorNode([(0.3, world1), (0.3, world2), (0.4, world3)]), name="figure2"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_relation(
    n: int, rng: np.random.Generator, allow_certain: bool = True
) -> ProbabilisticRelation:
    """A random independent relation with distinct scores."""
    scores = rng.permutation(np.arange(1, n + 1)).astype(float)
    if allow_certain:
        probabilities = rng.uniform(0.0, 1.0, size=n)
    else:
        probabilities = rng.uniform(0.05, 0.95, size=n)
    return ProbabilisticRelation.from_arrays(scores, probabilities)


def random_small_tree(rng: np.random.Generator, num_leaves: int = 6) -> AndXorTree:
    """A random small and/xor tree suitable for brute-force enumeration."""
    scores = rng.permutation(np.arange(1, num_leaves + 1)).astype(float)
    leaves = [LeafNode(Tuple(f"t{i + 1}", float(scores[i]), 1.0)) for i in range(num_leaves)]
    nodes: list = list(leaves)
    counter = 0
    while len(nodes) > 1:
        take = min(len(nodes), int(rng.integers(2, 4)))
        children, nodes = nodes[:take], nodes[take:]
        if rng.random() < 0.5:
            raw = rng.uniform(0.1, 1.0, size=len(children))
            scale = rng.uniform(0.5, 1.0)
            probabilities = raw / raw.sum() * scale
            node = XorNode(list(zip(probabilities.tolist(), children)))
        else:
            node = AndNode(children)
        nodes.append(node)
        counter += 1
    return AndXorTree(nodes[0], name=f"random-tree-{counter}")
