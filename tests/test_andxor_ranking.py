"""Tests for the ranking algorithms over and/xor trees."""

import numpy as np
import pytest

from repro import PRF, PRFOmega, PRFe, rank
from repro.andxor.ranking import (
    prf_values_tree,
    prfe_values_tree,
    prfe_values_tree_recompute,
    rank_tree,
)
from repro.andxor.tree import AndXorTree
from repro.core.possible_worlds import prf_by_enumeration
from repro.core.weights import NDCGDiscountWeight, StepWeight
from tests.conftest import random_relation, random_small_tree


class TestPRFeOnTrees:
    @pytest.mark.parametrize("alpha", [0.2, 0.6, 0.95, 1.0])
    def test_incremental_matches_bruteforce(self, figure1_tree, alpha):
        worlds = figure1_tree.enumerate_worlds()
        ordered, values = prfe_values_tree(figure1_tree, alpha)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, lambda i, a=alpha: a ** i)
            assert value == pytest.approx(exact, abs=1e-10), t.tid

    def test_incremental_matches_recompute(self, rng):
        for _ in range(5):
            tree = random_small_tree(rng, num_leaves=9)
            _, incremental = prfe_values_tree(tree, 0.8)
            _, recomputed = prfe_values_tree_recompute(tree, 0.8)
            assert np.allclose(incremental, recomputed, atol=1e-10)

    def test_tiny_magnitudes_survive_incremental_updates(self):
        """Regression: tiny-but-nonzero products must not be treated as zero.

        A deep block of certain tuples under a small alpha drives the and
        node's running product down to ``alpha**200 ~ 2.4e-305``.  The old
        guard classified any factor with magnitude below an absolute
        ``1e-300`` as zero, erasing every value downstream of the block;
        the mantissa/scale guard keeps the true (representable) values.
        """
        from repro import AndNode, LeafNode, Tuple

        high = [Tuple(f"h{i}", 1000.0 - i, 1.0) for i in range(200)]
        low = Tuple("low", 1.0, 1.0)
        tree = AndXorTree(
            AndNode([AndNode([LeafNode(t) for t in high]), LeafNode(low)])
        )
        alpha = 0.03
        ordered, incremental = prfe_values_tree(tree, alpha)
        _, recomputed = prfe_values_tree_recompute(tree, alpha)
        # True values are alpha**(i+1) — tiny but well inside double range.
        assert incremental[-1] != 0.0
        assert np.allclose(incremental, recomputed, rtol=1e-9, atol=0.0)
        expected = alpha ** (np.arange(len(ordered)) + 1.0)
        assert np.allclose(incremental, expected, rtol=1e-9, atol=0.0)

    def test_tiny_xor_edge_probabilities(self):
        """Trees whose leaves carry tiny marginals keep exact tiny values."""
        from repro import Tuple

        tiny = 1e-8
        groups = [
            [Tuple(f"a{i}", 100.0 - i, tiny)] for i in range(40)
        ] + [[Tuple("b", 1.0, 0.5)]]
        tree = AndXorTree.from_x_tuples(groups, name="tiny-edges")
        _, incremental = prfe_values_tree(tree, 0.9)
        _, recomputed = prfe_values_tree_recompute(tree, 0.9)
        # The difference F(a, a) - F(a, 0) of two near-1 evaluations cancels
        # ~8 digits here, so machine epsilon amplifies to ~1e-8 relative in
        # both evaluation strategies; the values must still be positive and
        # agree to that inherent precision instead of collapsing to zero.
        assert np.allclose(incremental, recomputed, rtol=1e-6, atol=0.0)
        assert np.all(np.asarray(incremental) > 0.0)

    def test_complex_alpha(self, figure1_tree):
        worlds = figure1_tree.enumerate_worlds()
        alpha = 0.5 + 0.4j
        ordered, values = prfe_values_tree(figure1_tree, alpha)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, lambda i: alpha ** i)
            assert value == pytest.approx(exact, abs=1e-10)

    def test_certain_and_impossible_edges(self):
        """Probabilities of exactly 0 and 1 must not break the guarded products."""
        from repro import AndNode, LeafNode, Tuple, XorNode

        tree = AndXorTree(
            AndNode(
                [
                    XorNode([(1.0, LeafNode(Tuple("a", 5, 1.0)))]),
                    XorNode([(0.0, LeafNode(Tuple("b", 4, 1.0))), (0.5, LeafNode(Tuple("c", 3, 1.0)))]),
                    XorNode([(0.7, LeafNode(Tuple("d", 2, 1.0)))]),
                ]
            )
        )
        worlds = tree.enumerate_worlds()
        ordered, values = prfe_values_tree(tree, 0.9)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, lambda i: 0.9 ** i)
            assert value == pytest.approx(exact, abs=1e-10)


class TestGeneralPRFOnTrees:
    def test_general_weight_matches_bruteforce(self, figure1_tree):
        worlds = figure1_tree.enumerate_worlds()
        rf = PRF(NDCGDiscountWeight())
        ordered, values = prf_values_tree(figure1_tree, rf)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, NDCGDiscountWeight())
            assert value == pytest.approx(exact, abs=1e-10)

    def test_step_weight_tree(self, rng):
        tree = random_small_tree(rng, num_leaves=8)
        worlds = tree.enumerate_worlds()
        rf = PRFOmega(StepWeight(3))
        ordered, values = prf_values_tree(tree, rf)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, StepWeight(3))
            assert value == pytest.approx(exact, abs=1e-10)

    def test_tuple_factor_on_tree(self, figure1_tree):
        from repro.core.weights import PositionWeight

        rf = PRF(PositionWeight(1), tuple_factor=lambda t: t.score)
        ordered, values = prf_values_tree(figure1_tree, rf)
        worlds = figure1_tree.enumerate_worlds()
        for t, value in zip(ordered, values):
            exact = t.score * prf_by_enumeration(worlds, t.tid, PositionWeight(1))
            assert value == pytest.approx(exact, abs=1e-10)


class TestConsistencyWithIndependentAlgorithms:
    def test_independent_tree_equals_flat_relation(self, rng):
        relation = random_relation(10, rng, allow_certain=False)
        tree = AndXorTree.from_independent(relation)
        for rf in (PRFe(0.8), PRFOmega(StepWeight(4)), PRF(NDCGDiscountWeight())):
            flat = rank(relation, rf)
            nested = rank(tree, rf)
            assert flat.tids() == nested.tids(), type(rf).__name__

    def test_rank_tree_dispatch_linear_combination(self, figure1_tree):
        from repro import LinearCombinationPRFe

        rf = LinearCombinationPRFe([0.7, 0.3], [0.9, 0.5])
        result = rank_tree(figure1_tree, rf)
        _, a = prfe_values_tree(figure1_tree, 0.9)
        _, b = prfe_values_tree(figure1_tree, 0.5)
        combined = 0.7 * a + 0.3 * b
        ordered = figure1_tree.sorted_tuples()
        expected_order = [
            t.tid
            for t, _ in sorted(
                zip(ordered, combined), key=lambda pair: -abs(pair[1])
            )
        ]
        assert result.tids() == expected_order

    def test_rank_tree_result_is_complete(self, figure1_tree):
        result = rank_tree(figure1_tree, PRFe(0.9))
        assert sorted(result.tids()) == sorted(t.tid for t in figure1_tree.tuples())
