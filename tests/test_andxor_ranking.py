"""Tests for the ranking algorithms over and/xor trees."""

import numpy as np
import pytest

from repro import PRF, PRFOmega, PRFe, rank
from repro.andxor.ranking import (
    prf_values_tree,
    prfe_values_tree,
    prfe_values_tree_recompute,
    rank_tree,
)
from repro.andxor.tree import AndXorTree
from repro.core.possible_worlds import prf_by_enumeration
from repro.core.weights import NDCGDiscountWeight, StepWeight
from tests.conftest import random_relation, random_small_tree


class TestPRFeOnTrees:
    @pytest.mark.parametrize("alpha", [0.2, 0.6, 0.95, 1.0])
    def test_incremental_matches_bruteforce(self, figure1_tree, alpha):
        worlds = figure1_tree.enumerate_worlds()
        ordered, values = prfe_values_tree(figure1_tree, alpha)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, lambda i, a=alpha: a ** i)
            assert value == pytest.approx(exact, abs=1e-10), t.tid

    def test_incremental_matches_recompute(self, rng):
        for _ in range(5):
            tree = random_small_tree(rng, num_leaves=9)
            _, incremental = prfe_values_tree(tree, 0.8)
            _, recomputed = prfe_values_tree_recompute(tree, 0.8)
            assert np.allclose(incremental, recomputed, atol=1e-10)

    def test_complex_alpha(self, figure1_tree):
        worlds = figure1_tree.enumerate_worlds()
        alpha = 0.5 + 0.4j
        ordered, values = prfe_values_tree(figure1_tree, alpha)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, lambda i: alpha ** i)
            assert value == pytest.approx(exact, abs=1e-10)

    def test_certain_and_impossible_edges(self):
        """Probabilities of exactly 0 and 1 must not break the guarded products."""
        from repro import AndNode, LeafNode, Tuple, XorNode

        tree = AndXorTree(
            AndNode(
                [
                    XorNode([(1.0, LeafNode(Tuple("a", 5, 1.0)))]),
                    XorNode([(0.0, LeafNode(Tuple("b", 4, 1.0))), (0.5, LeafNode(Tuple("c", 3, 1.0)))]),
                    XorNode([(0.7, LeafNode(Tuple("d", 2, 1.0)))]),
                ]
            )
        )
        worlds = tree.enumerate_worlds()
        ordered, values = prfe_values_tree(tree, 0.9)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, lambda i: 0.9 ** i)
            assert value == pytest.approx(exact, abs=1e-10)


class TestGeneralPRFOnTrees:
    def test_general_weight_matches_bruteforce(self, figure1_tree):
        worlds = figure1_tree.enumerate_worlds()
        rf = PRF(NDCGDiscountWeight())
        ordered, values = prf_values_tree(figure1_tree, rf)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, NDCGDiscountWeight())
            assert value == pytest.approx(exact, abs=1e-10)

    def test_step_weight_tree(self, rng):
        tree = random_small_tree(rng, num_leaves=8)
        worlds = tree.enumerate_worlds()
        rf = PRFOmega(StepWeight(3))
        ordered, values = prf_values_tree(tree, rf)
        for t, value in zip(ordered, values):
            exact = prf_by_enumeration(worlds, t.tid, StepWeight(3))
            assert value == pytest.approx(exact, abs=1e-10)

    def test_tuple_factor_on_tree(self, figure1_tree):
        from repro.core.weights import PositionWeight

        rf = PRF(PositionWeight(1), tuple_factor=lambda t: t.score)
        ordered, values = prf_values_tree(figure1_tree, rf)
        worlds = figure1_tree.enumerate_worlds()
        for t, value in zip(ordered, values):
            exact = t.score * prf_by_enumeration(worlds, t.tid, PositionWeight(1))
            assert value == pytest.approx(exact, abs=1e-10)


class TestConsistencyWithIndependentAlgorithms:
    def test_independent_tree_equals_flat_relation(self, rng):
        relation = random_relation(10, rng, allow_certain=False)
        tree = AndXorTree.from_independent(relation)
        for rf in (PRFe(0.8), PRFOmega(StepWeight(4)), PRF(NDCGDiscountWeight())):
            flat = rank(relation, rf)
            nested = rank(tree, rf)
            assert flat.tids() == nested.tids(), type(rf).__name__

    def test_rank_tree_dispatch_linear_combination(self, figure1_tree):
        from repro import LinearCombinationPRFe

        rf = LinearCombinationPRFe([0.7, 0.3], [0.9, 0.5])
        result = rank_tree(figure1_tree, rf)
        _, a = prfe_values_tree(figure1_tree, 0.9)
        _, b = prfe_values_tree(figure1_tree, 0.5)
        combined = 0.7 * a + 0.3 * b
        ordered = figure1_tree.sorted_tuples()
        expected_order = [
            t.tid
            for t, _ in sorted(
                zip(ordered, combined), key=lambda pair: -abs(pair[1])
            )
        ]
        assert result.tids() == expected_order

    def test_rank_tree_result_is_complete(self, figure1_tree):
        result = rank_tree(figure1_tree, PRFe(0.9))
        assert sorted(result.tids()) == sorted(t.tid for t in figure1_tree.tuples())
