"""Unit tests for the weight-function family."""

import math

import numpy as np
import pytest

from repro.core.weights import (
    CallableWeight,
    ConstantWeight,
    ExponentialWeight,
    LinearWeight,
    NDCGDiscountWeight,
    PositionWeight,
    StepWeight,
    TabulatedWeight,
)


class TestConstantWeight:
    def test_values(self):
        w = ConstantWeight(2.5)
        assert w(1) == 2.5 and w(100) == 2.5

    def test_rank_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstantWeight()(0)

    def test_as_array(self):
        array = ConstantWeight(1.0).as_array(3)
        assert np.allclose(array, [0, 1, 1, 1])


class TestStepWeight:
    def test_values_and_horizon(self):
        w = StepWeight(3)
        assert [w(i) for i in range(1, 6)] == [1, 1, 1, 0, 0]
        assert w.horizon == 3

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            StepWeight(0)


class TestPositionWeight:
    def test_indicator_behaviour(self):
        w = PositionWeight(2)
        assert [w(i) for i in range(1, 5)] == [0, 1, 0, 0]
        assert w.horizon == 2

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            PositionWeight(0)


class TestLinearWeight:
    def test_negated_rank(self):
        w = LinearWeight()
        assert w(1) == -1 and w(10) == -10
        assert w.horizon is None


class TestExponentialWeight:
    def test_real_alpha(self):
        w = ExponentialWeight(0.5)
        assert w(3) == pytest.approx(0.125)
        assert w.is_real()

    def test_complex_alpha(self):
        w = ExponentialWeight(0.5j)
        assert w(2) == pytest.approx(-0.25 + 0j)
        assert not w.is_real()

    def test_as_array_complex_dtype(self):
        array = ExponentialWeight(1j).as_array(2)
        assert np.iscomplexobj(array)


class TestNDCGDiscountWeight:
    def test_values(self):
        w = NDCGDiscountWeight()
        assert w(1) == pytest.approx(1.0)
        assert w(3) == pytest.approx(math.log(2) / math.log(4))
        assert w(1) > w(2) > w(10)


class TestTabulatedWeight:
    def test_values_within_and_beyond_table(self):
        w = TabulatedWeight([0.5, 0.25])
        assert w(1) == 0.5 and w(2) == 0.25 and w(3) == 0.0
        assert w.horizon == 2

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TabulatedWeight([])

    def test_complex_table(self):
        w = TabulatedWeight(np.array([1 + 1j]))
        assert not w.is_real()
        assert w(1) == 1 + 1j


class TestCallableWeight:
    def test_wraps_function(self):
        w = CallableWeight(lambda i: 1.0 / i, horizon=None)
        assert w(4) == pytest.approx(0.25)
        assert w.is_real()

    def test_horizon_passthrough(self):
        w = CallableWeight(lambda i: 1.0, horizon=7)
        assert w.horizon == 7

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            CallableWeight(lambda i: 1.0)(0)
