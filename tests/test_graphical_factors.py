"""Tests for the discrete factor algebra used by the graphical-model substrate."""

import numpy as np
import pytest

from repro.graphical import Factor


class TestConstruction:
    def test_basic_table(self):
        factor = Factor(("a", "b"), np.arange(4).reshape(2, 2))
        assert factor.variables == ("a", "b")
        assert factor.value({"a": 1, "b": 0}) == 2.0

    def test_flat_table_reshaped(self):
        factor = Factor(("a", "b"), [1, 2, 3, 4])
        assert factor.table.shape == (2, 2)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            Factor(("a",), [-0.5, 0.5])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            Factor(("a", "a"), np.ones((2, 2)))

    def test_bernoulli_and_evidence(self):
        assert np.allclose(Factor.bernoulli("x", 0.3).table, [0.7, 0.3])
        assert np.allclose(Factor.evidence("x", 1).table, [0.0, 1.0])
        with pytest.raises(ValueError):
            Factor.bernoulli("x", 1.5)
        with pytest.raises(ValueError):
            Factor.evidence("x", 2)

    def test_uniform(self):
        assert Factor.uniform(("a", "b")).total() == 4.0


class TestOperations:
    def test_multiply_disjoint_scopes(self):
        product = Factor.bernoulli("a", 0.3).multiply(Factor.bernoulli("b", 0.6))
        assert set(product.variables) == {"a", "b"}
        assert product.value({"a": 1, "b": 1}) == pytest.approx(0.18)
        assert product.total() == pytest.approx(1.0)

    def test_multiply_shared_scope(self):
        f1 = Factor(("a", "b"), [[0.1, 0.2], [0.3, 0.4]])
        f2 = Factor(("b", "c"), [[0.5, 0.5], [0.25, 0.75]])
        product = f1.multiply(f2)
        assert product.value({"a": 1, "b": 1, "c": 0}) == pytest.approx(0.4 * 0.25)

    def test_multiply_axis_order_irrelevant(self):
        f1 = Factor(("a", "b"), [[0.1, 0.2], [0.3, 0.4]])
        f2 = Factor(("b", "a"), [[0.1, 0.3], [0.2, 0.4]])
        for assignment in ({"a": 0, "b": 1}, {"a": 1, "b": 0}):
            assert f1.value(assignment) == pytest.approx(f2.value(assignment))

    def test_marginalize(self):
        f = Factor(("a", "b"), [[0.1, 0.2], [0.3, 0.4]])
        marginal = f.marginalize(["a"])
        assert np.allclose(marginal.table, [0.3, 0.7])
        empty = f.marginalize([])
        assert empty.total() == pytest.approx(1.0)

    def test_marginalize_unknown_variable(self):
        with pytest.raises(ValueError):
            Factor(("a",), [0.5, 0.5]).marginalize(["b"])

    def test_reorder(self):
        f = Factor(("a", "b"), [[0.1, 0.2], [0.3, 0.4]])
        swapped = f.reorder(("b", "a"))
        assert swapped.value({"a": 1, "b": 0}) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            f.reorder(("a", "c"))

    def test_reduce_evidence(self):
        f = Factor(("a", "b"), [[0.1, 0.2], [0.3, 0.4]])
        reduced = f.reduce({"a": 1})
        assert reduced.variables == ("b",)
        assert np.allclose(reduced.table, [0.3, 0.4])
        assert f.reduce({"c": 0}).variables == ("a", "b")

    def test_divide_with_zero_convention(self):
        numerator = Factor(("a",), [0.0, 0.4])
        denominator = Factor(("a",), [0.0, 0.8])
        ratio = numerator.divide(denominator)
        assert np.allclose(ratio.table, [0.0, 0.5])

    def test_normalize(self):
        f = Factor(("a",), [1.0, 3.0]).normalize()
        assert np.allclose(f.table, [0.25, 0.75])
        zero = Factor(("a",), [0.0, 0.0]).normalize()
        assert zero.total() == 0.0

    def test_expand_broadcast_shape(self):
        f = Factor(("a",), [0.2, 0.8])
        expanded = f.expand(("b", "a", "c"))
        assert expanded.shape == (1, 2, 1)
        with pytest.raises(ValueError):
            f.expand(("b", "c"))
