"""Tests for Markov networks, junction trees and ranking over them (Section 9)."""

import numpy as np
import pytest

from repro import PRFOmega, PRFe, ProbabilisticRelation, Tuple, rank
from repro.core.possible_worlds import rank_distribution_by_enumeration
from repro.core.weights import StepWeight
from repro.graphical import (
    Factor,
    MarkovChainRelation,
    MarkovNetworkRelation,
    build_junction_tree,
    min_fill_order,
    positional_probabilities_markov,
    rank_distribution_markov,
    rank_markov_network,
)


def _random_chain(rng: np.random.Generator, length: int) -> MarkovChainRelation:
    scores = rng.permutation(np.arange(1, length + 1)).astype(float)
    tuples = [Tuple(f"y{i}", float(scores[i]), 1.0) for i in range(length)]
    transitions = []
    for _ in range(length - 1):
        stay_absent = rng.uniform(0.2, 0.9)
        stay_present = rng.uniform(0.2, 0.9)
        transitions.append(
            np.array([[stay_absent, 1 - stay_absent], [1 - stay_present, stay_present]])
        )
    return MarkovChainRelation(tuples, float(rng.uniform(0.2, 0.8)), transitions)


def _loopy_network(rng: np.random.Generator, length: int = 5) -> MarkovNetworkRelation:
    """A cycle of pairwise factors (requires triangulation)."""
    scores = rng.permutation(np.arange(1, length + 1)).astype(float)
    tuples = [Tuple(f"v{i}", float(scores[i]), 1.0) for i in range(length)]
    factors = []
    for i in range(length):
        j = (i + 1) % length
        table = rng.uniform(0.1, 1.0, size=(2, 2))
        factors.append(Factor((f"v{i}", f"v{j}"), table))
    return MarkovNetworkRelation(tuples, factors)


class TestModelValidation:
    def test_factor_over_unknown_variable_rejected(self):
        tuples = [Tuple("a", 1.0, 1.0)]
        with pytest.raises(ValueError):
            MarkovNetworkRelation(tuples, [Factor(("b",), [0.5, 0.5])])

    def test_uncovered_tuple_rejected(self):
        tuples = [Tuple("a", 1.0, 1.0), Tuple("b", 2.0, 1.0)]
        with pytest.raises(ValueError):
            MarkovNetworkRelation(tuples, [Factor(("a",), [0.5, 0.5])])

    def test_duplicate_ids_rejected(self):
        tuples = [Tuple("a", 1.0, 1.0), Tuple("a", 2.0, 1.0)]
        with pytest.raises(ValueError):
            MarkovNetworkRelation(tuples, [Factor(("a",), [0.5, 0.5])])

    def test_from_independent_marginals(self):
        relation = ProbabilisticRelation.from_pairs([(3, 0.3), (2, 0.7)])
        network = MarkovNetworkRelation.from_independent(relation)
        marginals = network.marginal_probabilities_bruteforce()
        assert marginals["t1"] == pytest.approx(0.3)
        assert marginals["t2"] == pytest.approx(0.7)

    def test_enumeration_guard(self, rng):
        tuples = [Tuple(f"x{i}", float(i), 1.0) for i in range(25)]
        factors = [Factor((t.tid,), [0.5, 0.5]) for t in tuples]
        network = MarkovNetworkRelation(tuples, factors)
        with pytest.raises(ValueError):
            network.enumerate_worlds()


class TestJunctionTree:
    def test_min_fill_covers_all_variables(self):
        adjacency = {"a": {"b"}, "b": {"a", "c"}, "c": {"b"}}
        order, cliques = min_fill_order(adjacency)
        assert set(order) == {"a", "b", "c"}
        assert any({"a", "b"} <= clique for clique in cliques)

    def test_chain_treewidth_is_one(self, rng):
        chain = _random_chain(rng, 6)
        network = chain.to_markov_network()
        tree = build_junction_tree(network.variables(), network.factors)
        assert tree.treewidth() == 1

    def test_cycle_treewidth_is_two(self, rng):
        network = _loopy_network(rng, 5)
        tree = build_junction_tree(network.variables(), network.factors)
        assert tree.treewidth() == 2

    def test_calibration_marginals_match_bruteforce(self, rng):
        for _ in range(3):
            network = _loopy_network(rng, 5)
            tree = build_junction_tree(network.variables(), network.factors)
            calibrated = tree.calibrate()
            exact = network.marginal_probabilities_bruteforce()
            for variable in network.variables():
                assert calibrated.variable_marginal(variable) == pytest.approx(
                    exact[variable], abs=1e-9
                )

    def test_calibration_with_evidence(self, rng):
        chain = _random_chain(rng, 5)
        network = chain.to_markov_network()
        tree = build_junction_tree(network.variables(), network.factors)
        target = network.variables()[2]
        calibrated = tree.calibrate(evidence={target: 1})
        assert calibrated.variable_marginal(target) == pytest.approx(1.0)

    def test_unknown_evidence_variable(self, rng):
        chain = _random_chain(rng, 4)
        network = chain.to_markov_network()
        tree = build_junction_tree(network.variables(), network.factors)
        with pytest.raises(KeyError):
            tree.calibrate(evidence={"bogus": 1})

    def test_disconnected_components(self):
        tuples = [Tuple("a", 2.0, 1.0), Tuple("b", 1.0, 1.0)]
        factors = [Factor(("a",), [0.4, 0.6]), Factor(("b",), [0.3, 0.7])]
        network = MarkovNetworkRelation(tuples, factors)
        tree = build_junction_tree(network.variables(), network.factors)
        assert len(tree.components()) == 2
        calibrated = tree.calibrate()
        assert calibrated.variable_marginal("a") == pytest.approx(0.6)
        assert calibrated.variable_marginal("b") == pytest.approx(0.7)


class TestMarkovChainRanking:
    def test_marginals_forward_propagation(self, rng):
        chain = _random_chain(rng, 6)
        network = chain.to_markov_network()
        exact = network.marginal_probabilities_bruteforce()
        marginals = chain.marginals()
        for tid, value in exact.items():
            assert marginals[tid] == pytest.approx(value, abs=1e-9)

    def test_rank_distribution_matches_enumeration(self, rng):
        for _ in range(3):
            chain = _random_chain(rng, 6)
            worlds = chain.to_markov_network().enumerate_worlds()
            for t in chain.tuples:
                exact = rank_distribution_by_enumeration(worlds, t.tid, len(chain))
                computed = chain.rank_distribution(t.tid)
                assert np.allclose(computed, exact, atol=1e-9), t.tid

    def test_rank_method(self, rng):
        chain = _random_chain(rng, 6)
        result = chain.rank(PRFe(0.9))
        assert len(result) == 6

    def test_homogeneous_constructor_validation(self):
        tuples = [Tuple("a", 1.0, 1.0), Tuple("b", 2.0, 1.0)]
        with pytest.raises(ValueError):
            MarkovChainRelation(tuples, initial=1.5, transitions=[np.eye(2)])
        with pytest.raises(ValueError):
            MarkovChainRelation(tuples, initial=0.5, transitions=[])
        with pytest.raises(ValueError):
            MarkovChainRelation(
                tuples, initial=0.5, transitions=[np.array([[0.5, 0.6], [0.5, 0.5]])]
            )

    def test_unknown_tuple(self, rng):
        chain = _random_chain(rng, 4)
        with pytest.raises(KeyError):
            chain.rank_distribution("bogus")


class TestMarkovNetworkRanking:
    def test_chain_network_matches_chain_algorithm(self, rng):
        chain = _random_chain(rng, 6)
        network = chain.to_markov_network()
        for t in chain.tuples:
            direct = chain.rank_distribution(t.tid)
            general = rank_distribution_markov(network, t.tid)
            assert np.allclose(direct, general, atol=1e-9), t.tid

    def test_loopy_network_matches_enumeration(self, rng):
        for _ in range(2):
            network = _loopy_network(rng, 5)
            worlds = network.enumerate_worlds()
            for t in network.tuples:
                exact = rank_distribution_by_enumeration(worlds, t.tid, len(network))
                computed = rank_distribution_markov(network, t.tid)
                assert np.allclose(computed, exact, atol=1e-9), t.tid

    def test_independent_network_matches_flat_relation(self, rng):
        relation = ProbabilisticRelation.from_pairs(
            [(5, 0.3), (4, 0.8), (3, 0.5), (2, 0.6)]
        )
        network = MarkovNetworkRelation.from_independent(relation)
        for rf in (PRFe(0.8), PRFOmega(StepWeight(2))):
            assert rank(network, rf).tids() == rank(relation, rf).tids()

    def test_positional_matrix_rows_sum_to_marginals(self, rng):
        network = _loopy_network(rng, 5)
        ordered, matrix = positional_probabilities_markov(network)
        marginals = network.marginal_probabilities_bruteforce()
        for i, t in enumerate(ordered):
            assert matrix[i].sum() == pytest.approx(marginals[t.tid], abs=1e-9)

    def test_rank_markov_network_result(self, rng):
        network = _loopy_network(rng, 5)
        result = rank_markov_network(network, PRFe(0.9))
        assert len(result) == 5

    def test_unknown_tuple_rejected(self, rng):
        network = _loopy_network(rng, 4)
        with pytest.raises(KeyError):
            rank_distribution_markov(network, "bogus")
