"""Tests for the DFT-based approximation of weight functions (Section 5.1)."""

import numpy as np
import pytest

from repro import PRFOmega, rank
from repro.approx import STAGE_SETS, approximate_weight_function, dft_approximation
from repro.core.weights import StepWeight, TabulatedWeight
from repro.metrics import kendall_topk_distance
from tests.conftest import random_relation


class TestApproximationMechanics:
    def test_number_of_terms(self):
        approx = dft_approximation(StepWeight(50), num_terms=10)
        assert len(approx) == 10
        assert approx.coefficients.shape == approx.alphas.shape

    def test_support_from_horizon(self):
        approx = dft_approximation(StepWeight(30), num_terms=5)
        assert approx.support == 30

    def test_support_from_table(self):
        approx = dft_approximation([1.0, 0.5, 0.25], num_terms=3)
        assert approx.support == 3

    def test_support_required_for_unbounded_weight(self):
        from repro.core.weights import LinearWeight

        with pytest.raises(ValueError):
            dft_approximation(LinearWeight(), num_terms=5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            dft_approximation(StepWeight(10), num_terms=0)
        with pytest.raises(ValueError):
            dft_approximation(StepWeight(10), num_terms=5, stages=("dft", "bogus"))
        with pytest.raises(ValueError):
            dft_approximation(StepWeight(10), num_terms=5, domain_multiplier=0)

    def test_terms_capped_at_domain(self):
        approx = dft_approximation(StepWeight(4), num_terms=1000, domain_multiplier=2)
        assert len(approx) == 8

    def test_to_ranking_function(self):
        rf = approximate_weight_function(StepWeight(20), num_terms=8)
        assert len(rf) == 8


class TestApproximationQuality:
    def test_smooth_weight_is_well_approximated(self):
        support = 200
        positions = np.arange(1, support + 1, dtype=float)
        smooth = TabulatedWeight(0.5 * (1 + np.cos(np.pi * (positions - 1) / support)))
        approx = dft_approximation(smooth, num_terms=20, support=support)
        ranks = np.arange(1, int(1.5 * support))
        target = np.array([smooth(int(i)) for i in ranks])
        error = np.mean(np.abs(approx.evaluate(ranks) - target))
        assert error < 0.02

    def test_damping_kills_periodicity(self):
        """Without DF the approximation is periodic; with DF it decays to ~0."""
        support = 100
        far_ranks = np.arange(3 * support, 4 * support)
        plain = dft_approximation(StepWeight(support), num_terms=15, stages=("dft",))
        damped = dft_approximation(
            StepWeight(support), num_terms=15, stages=("dft", "df", "is")
        )
        assert np.max(np.abs(damped.evaluate(far_ranks))) < 0.05
        assert np.max(np.abs(plain.evaluate(far_ranks))) > 0.5

    def test_stage_sets_improve_step_approximation(self):
        """Adding IS then ES reduces the error on the support (Figure 4)."""
        support = 200
        weight = StepWeight(support)
        ranks = np.arange(1, support + 1)
        target = np.ones(support)
        errors = {}
        for label, stages in STAGE_SETS.items():
            approx = dft_approximation(weight, num_terms=20, support=support, stages=stages)
            errors[label] = float(np.mean(np.abs(approx.evaluate(ranks) - target)))
        assert errors["DFT+DF+IS"] < errors["DFT+DF"]
        assert errors["DFT+DF+IS+ES"] <= errors["DFT+DF+IS"] + 1e-9

    def test_more_terms_reduce_error(self):
        support = 150
        weight = StepWeight(support)
        ranks = np.arange(1, support + 1)
        target = np.ones(support)
        few = dft_approximation(weight, num_terms=5, support=support)
        many = dft_approximation(weight, num_terms=40, support=support)
        error_few = np.mean(np.abs(few.evaluate(ranks) - target))
        error_many = np.mean(np.abs(many.evaluate(ranks) - target))
        assert error_many < error_few

    def test_max_error_helper(self):
        approx = dft_approximation(StepWeight(50), num_terms=20)
        assert approx.max_error(StepWeight(50)) >= 0.0


class TestRankingWithApproximation:
    def test_approximate_pt_ranking_close_to_exact(self, rng):
        relation = random_relation(400, rng, allow_certain=False)
        h, k = 40, 40
        exact = rank(relation, PRFOmega(StepWeight(h))).top_k(k)
        rf = approximate_weight_function(StepWeight(h), num_terms=30)
        approx = rank(relation, rf).top_k(k)
        assert kendall_topk_distance(approx, exact, k=k) < 0.15

    def test_single_exponential_matches_prfe(self, rng):
        from repro import LinearCombinationPRFe, PRFe

        relation = random_relation(50, rng, allow_certain=False)
        combo = LinearCombinationPRFe([1.0], [0.8])
        assert rank(relation, combo).tids() == rank(relation, PRFe(0.8)).tids()
