"""Unit tests for the RankingResult container."""

import pytest

from repro import Tuple
from repro.core.result import RankedItem, RankingResult


def _tuples():
    return [Tuple("a", 3.0, 0.5), Tuple("b", 2.0, 0.5), Tuple("c", 1.0, 0.5)]


class TestRankingResult:
    def test_orders_by_absolute_value(self):
        result = RankingResult.from_values(_tuples(), [0.1, -0.5, 0.3])
        assert result.tids() == ["b", "c", "a"]

    def test_positions_are_one_based(self):
        result = RankingResult.from_values(_tuples(), [0.1, 0.5, 0.3])
        assert [item.position for item in result] == [1, 2, 3]
        assert result.position_of("b") == 1

    def test_tie_break_by_score_then_tid(self):
        tuples = [Tuple("x", 1.0, 0.5), Tuple("y", 2.0, 0.5)]
        result = RankingResult.from_values(tuples, [0.5, 0.5])
        assert result.tids() == ["y", "x"]

    def test_sort_keys_override_ordering(self):
        result = RankingResult.from_values(
            _tuples(), [0.0, 0.0, 0.0], sort_keys=[1.0, 3.0, 2.0]
        )
        assert result.tids() == ["b", "c", "a"]

    def test_sort_keys_length_validation(self):
        with pytest.raises(ValueError):
            RankingResult.from_values(_tuples(), [1, 2, 3], sort_keys=[1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankingResult.from_values(_tuples(), [1, 2])

    def test_top_k_and_slice(self):
        result = RankingResult.from_values(_tuples(), [3, 2, 1])
        assert result.top_k(2) == ["a", "b"]
        sliced = result[:2]
        assert isinstance(sliced, RankingResult)
        assert len(sliced) == 2
        assert isinstance(result[0], RankedItem)

    def test_values_and_value_of(self):
        result = RankingResult.from_values(_tuples(), [3, 2, 1])
        assert result.values() == {"a": 3, "b": 2, "c": 1}
        assert result.value_of("b") == 2
        with pytest.raises(KeyError):
            result.value_of("zzz")
        with pytest.raises(KeyError):
            result.position_of("zzz")

    def test_ranked_item_magnitude(self):
        item = RankedItem(position=1, item=Tuple("a", 1.0, 0.5), value=-2.0)
        assert item.magnitude == 2.0
        assert item.tid == "a"
