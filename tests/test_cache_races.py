"""Regression tests for cache-entry races surfaced by ``repro.analysis``.

The LOCK201 checker flagged every ``shed()`` implementation for mutating
lock-guarded attributes without the lock.  These tests pin the two
behavior-visible consequences:

* ``CachedNetwork.calibrated()`` used to re-read ``self.base_calibrated``
  *after* releasing the entry lock, so a concurrent ``shed()`` (budget
  enforcement on another thread) could hand the caller ``None``;
* an unlocked ``shed()`` could interleave with ``prefix_matrix`` growth.

Both are driven deterministically by wrapping the entry lock so that a
``shed()`` fires in the exact window between lock release and the read
the old code performed.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Engine, PRFe, Tuple
from repro.engine.cache import RelationCache, dataset_fingerprint
from repro.graphical import MarkovChainRelation


def make_network(seed: int = 0):
    rng = np.random.default_rng(seed)
    tuples = [
        Tuple(f"m{i}", float(score), 1.0)
        for i, score in enumerate(rng.permutation(60)[:6])
    ]
    chain = MarkovChainRelation.homogeneous(tuples, 0.6, 0.7, 0.8, name=f"race-{seed}")
    return chain.to_markov_network()


class ShedOnRelease:
    """Lock proxy that runs ``entry.shed()`` right after *every* release.

    This schedules a shed in the exact window the old ``calibrated()``
    implementation left open: after its ``with self.lock:`` block
    released, before it re-read the attribute.  A guard stops the
    recursion that the (now lock-taking) ``shed()`` would otherwise
    trigger.
    """

    def __init__(self, entry):
        self.entry = entry
        self.inner = entry.lock
        self._firing = False

    def __enter__(self):
        return self.inner.__enter__()

    def __exit__(self, *exc_info):
        result = self.inner.__exit__(*exc_info)
        if not self._firing:
            self._firing = True
            try:
                self.entry.shed()
            finally:
                self._firing = False
        return result

    def acquire(self, *args, **kwargs):
        return self.inner.acquire(*args, **kwargs)

    def release(self):
        return self.inner.release()


class TestCalibratedShedRace:
    def test_calibrated_survives_concurrent_shed(self):
        """A shed landing right after calibration must not surface ``None``.

        Regression: ``calibrated()`` returned ``self.base_calibrated``
        read *outside* the lock, so the shed below made it return
        ``None`` and the Markov backend crashed on a ``NoneType``.
        """
        cache = RelationCache()
        entry = cache.entry_for(make_network())
        entry.junction_tree()  # build before arming, so only calibrate races
        entry.lock = ShedOnRelease(entry)
        calibrated = entry.calibrated()
        assert calibrated is not None
        # The armed shed emptied the cached slot right after the lock
        # released; the caller still holds a usable calibration.
        assert entry.base_calibrated is None

    def test_positional_matrix_survives_concurrent_shed(self):
        """Same window for the DP matrix: a shed must cost a recompute, not a crash."""
        cache = RelationCache()
        network = make_network(1)
        entry = cache.entry_for(network)
        entry.junction_tree()
        entry.lock = ShedOnRelease(entry)
        matrix = entry.positional_matrix(4)
        assert matrix.shape[1] == 4
        assert np.all(np.isfinite(matrix))

    def test_shed_is_atomic_under_prefix_growth_hammer(self):
        """Concurrent shed/grow threads never corrupt a served matrix."""
        cache = RelationCache()
        rng = np.random.default_rng(7)
        tuples = [
            Tuple(f"t{i}", float(s), float(p))
            for i, (s, p) in enumerate(zip(rng.permutation(40), rng.uniform(0.1, 1.0, 40)))
        ]
        from repro import ProbabilisticRelation

        entry = cache.entry_for(ProbabilisticRelation(tuples, name="hammer"))
        reference = entry.prefix_matrix(8).copy()
        errors = []
        stop = threading.Event()

        def shedder():
            while not stop.is_set():
                entry.shed()

        def grower():
            for _ in range(200):
                try:
                    matrix = entry.prefix_matrix(8)
                    if matrix.shape != reference.shape or not np.array_equal(
                        matrix, reference
                    ):
                        errors.append("matrix mismatch")
                        break
                except Exception as exc:  # noqa: BLE001 - the regression itself
                    errors.append(repr(exc))
                    break

        threads = [threading.Thread(target=shedder)] + [
            threading.Thread(target=grower) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads[1:]:
            t.join()
        stop.set()
        threads[0].join()
        assert errors == []

    def test_ranking_still_bit_identical_after_shed(self):
        """End-to-end: shedding between ranks changes nothing in the output."""
        network = make_network(2)
        engine = Engine()
        before = engine.rank(network, PRFe(0.9), name="net")
        entry = engine.cache.entry_for(network)
        entry.shed()
        after = engine.rank(network, PRFe(0.9), name="net")
        assert before.tids() == after.tids()
        assert [i.value for i in before] == [i.value for i in after]
        assert dataset_fingerprint(network) == dataset_fingerprint(network)
