"""Tests for the ranking-comparison metrics."""

import pytest

from repro.metrics import (
    kendall_full_distance,
    kendall_topk_distance,
    set_overlap,
    symmetric_difference,
    weighted_symmetric_difference,
)


class TestKendallTopK:
    def test_identical_lists(self):
        assert kendall_topk_distance(["a", "b", "c"], ["a", "b", "c"]) == 0.0

    def test_disjoint_lists_distance_one(self):
        assert kendall_topk_distance(["a", "b"], ["c", "d"]) == pytest.approx(1.0)

    def test_reversed_lists(self):
        # All 3 pairs inverted out of k^2 = 9.
        assert kendall_topk_distance(["a", "b", "c"], ["c", "b", "a"]) == pytest.approx(3 / 9)

    def test_single_swap(self):
        assert kendall_topk_distance(["a", "b", "c"], ["a", "c", "b"]) == pytest.approx(1 / 9)

    def test_partial_overlap_case2(self):
        # k = 2; lists share "a"; "b" only in first, "c" only in second.
        # Pairs: (a,b): b in K1 behind a, b not in K2, a in K2 -> no inversion.
        #        (a,c): symmetric, no inversion.  (b,c): case 3 -> inversion.
        assert kendall_topk_distance(["a", "b"], ["a", "c"]) == pytest.approx(1 / 4)

    def test_case2_inversion(self):
        # "b" ranked above "a" in K1, but only "a" survives into K2.
        assert kendall_topk_distance(["b", "a"], ["a", "c"]) == pytest.approx(2 / 4)

    def test_k_parameter_truncates(self):
        first = ["a", "b", "c", "d"]
        second = ["a", "b", "x", "y"]
        assert kendall_topk_distance(first, second, k=2) == 0.0

    def test_unnormalized_counts(self):
        assert kendall_topk_distance(["a", "b"], ["c", "d"], normalized=False) == 4

    def test_symmetry(self):
        first, second = ["a", "b", "c"], ["b", "d", "a"]
        assert kendall_topk_distance(first, second) == kendall_topk_distance(second, first)

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            kendall_topk_distance(["a", "a"], ["b", "c"])

    def test_empty_lists(self):
        assert kendall_topk_distance([], []) == 0.0

    def test_overlap_bound_from_distance(self):
        """If the distance is delta, the lists share at least 1 - sqrt(delta) of items."""
        first = ["a", "b", "c", "d", "e"]
        second = ["a", "c", "b", "f", "e"]
        delta = kendall_topk_distance(first, second)
        overlap = set_overlap(first, second)
        assert overlap >= 1 - delta ** 0.5 - 1e-9


class TestKendallFull:
    def test_identical(self):
        assert kendall_full_distance(["a", "b", "c"], ["a", "b", "c"]) == 0.0

    def test_reversed(self):
        assert kendall_full_distance(["a", "b", "c"], ["c", "b", "a"]) == 1.0

    def test_requires_same_items(self):
        with pytest.raises(ValueError):
            kendall_full_distance(["a", "b"], ["a", "c"])

    def test_single_item(self):
        assert kendall_full_distance(["a"], ["a"]) == 0.0


class TestSetDistances:
    def test_symmetric_difference(self):
        assert symmetric_difference(["a", "b"], ["b", "c"]) == 2.0
        assert symmetric_difference(["a"], ["a"]) == 0.0

    def test_weighted_symmetric_difference(self):
        def weight(i):
            return 1.0 / i

        # "x" at position 1 and "y" at position 2 are missing from the answer.
        assert weighted_symmetric_difference(["a"], ["x", "y", "a"], weight) == pytest.approx(
            1.0 + 0.5
        )

    def test_weighted_difference_zero_when_covered(self):
        assert weighted_symmetric_difference(["a", "b"], ["a", "b"], lambda i: 1.0) == 0.0

    def test_set_overlap(self):
        assert set_overlap(["a", "b"], ["b", "c"]) == pytest.approx(0.5)
        assert set_overlap([], [], k=0) == 1.0
