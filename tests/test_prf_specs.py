"""Unit tests for the PRF ranking-function specification classes."""

import numpy as np
import pytest

from repro import PRF, LinearCombinationPRFe, PRFLinear, PRFOmega, PRFe
from repro.core.weights import ConstantWeight, LinearWeight, StepWeight


class TestPRF:
    def test_accepts_weight_function(self):
        rf = PRF(StepWeight(5))
        assert rf.weight.horizon == 5

    def test_accepts_callable(self):
        rf = PRF(lambda i: 1.0 / i)
        assert rf.weight(2) == pytest.approx(0.5)
        assert rf.weight.horizon is None

    def test_accepts_table(self):
        rf = PRF([3.0, 2.0, 1.0])
        assert rf.weight(2) == 2.0
        assert rf.weight.horizon == 3

    def test_tuple_factor(self):
        from repro import Tuple

        rf = PRF(ConstantWeight(), tuple_factor=lambda t: t.score)
        assert rf.factor(Tuple("a", 7.0, 0.5)) == 7.0
        assert PRF(ConstantWeight()).factor(Tuple("a", 7.0, 0.5)) == 1.0

    def test_weight_array(self):
        rf = PRF(StepWeight(2))
        assert np.allclose(rf.weight_array(4), [0, 1, 1, 0, 0])


class TestPRFOmega:
    def test_from_table(self):
        rf = PRFOmega([1.0, 0.5, 0.25])
        assert rf.h == 3
        assert rf.weight(2) == 0.5

    def test_from_bounded_weight_function(self):
        rf = PRFOmega(StepWeight(4))
        assert rf.h == 4

    def test_unbounded_weight_rejected(self):
        with pytest.raises(ValueError):
            PRFOmega(LinearWeight())


class TestPRFe:
    def test_alpha_property(self):
        assert PRFe(0.7).alpha == 0.7
        assert PRFe(0.5 + 0.5j).alpha == 0.5 + 0.5j

    def test_weight_is_exponential(self):
        assert PRFe(0.5).weight(3) == pytest.approx(0.125)

    def test_real_detection(self):
        assert PRFe(0.9).is_real()
        assert not PRFe(0.9j).is_real()


class TestPRFLinear:
    def test_weight(self):
        rf = PRFLinear()
        assert rf.weight(5) == -5


class TestLinearCombinationPRFe:
    def test_terms_and_len(self):
        rf = LinearCombinationPRFe([1.0, 2.0], [0.5, 0.25])
        assert len(rf) == 2
        assert rf.terms() == [(1.0 + 0j, 0.5 + 0j), (2.0 + 0j, 0.25 + 0j)]

    def test_omega_matches_manual_sum(self):
        rf = LinearCombinationPRFe([1.0, -0.5], [0.5, 0.9])
        ranks = np.array([1, 2, 3])
        expected = 1.0 * 0.5 ** ranks + (-0.5) * 0.9 ** ranks
        assert np.allclose(rf.omega(ranks), expected)

    def test_weight_callable_consistency(self):
        rf = LinearCombinationPRFe([1.0], [0.5])
        assert rf.weight(3) == pytest.approx(0.125)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearCombinationPRFe([1.0, 2.0], [0.5])
        with pytest.raises(ValueError):
            LinearCombinationPRFe([], [])

    def test_not_real(self):
        assert not LinearCombinationPRFe([1.0], [0.5]).is_real()
