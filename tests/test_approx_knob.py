"""Tests for the planner's ``approx=`` error-budget knob.

The contracts under test:

* a request carrying a budget either runs exactly (``ApproxDecision.
  used`` false) or runs a certified ``L``-term exponential substitute
  whose realized per-tuple error never exceeds the budget;
* the planner records its exact-vs-approximate decision in the
  :class:`~repro.engine.facade.ExecutionPlan`;
* ineligible specs (PRFe, ``tuple_factor``, complex weights, steep
  discounts that the DFT cannot certify) always fall back to exact;
* decisions are memoized per ``(spec, size, budget)``, so batch
  entry points plan once, not per call;
* the service and TCP layers forward per-request budgets and echo the
  decision in reply metadata.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    PRF,
    Engine,
    LinearCombinationPRFe,
    PRFOmega,
    PRFe,
    ProbabilisticRelation,
)
from repro.core.weights import NDCGDiscountWeight, StepWeight, TabulatedWeight
from repro.engine import ApproxDecision, plan_approx
from repro.service import (
    AsyncRankingClient,
    RankingService,
    RemoteServiceError,
    TCPRankingClient,
    serve_tcp,
)


def gaussian_weight(horizon: int = 2000, scale: float = 400.0) -> TabulatedWeight:
    """A smooth Gaussian-decay discount the DFT approximates well."""
    ranks = np.arange(1, horizon + 1)
    return TabulatedWeight(np.exp(-0.5 * (ranks / scale) ** 2))


def make_relation(n: int, seed: int, name: str = "") -> ProbabilisticRelation:
    rng = np.random.default_rng(seed)
    return ProbabilisticRelation.from_arrays(
        rng.uniform(0.0, 1000.0, n), rng.uniform(0.0, 1.0, n), name=name or f"rel-{seed}"
    )


def realized_errors(approximate, exact) -> list[float]:
    """Per-tuple |approx - exact| over a pair of rankings."""
    exact_values = exact.values()
    return [abs(value - exact_values[tid]) for tid, value in approximate.values().items()]


class TestPlanApprox:
    def test_certifies_smooth_weight_within_budget(self):
        decision = plan_approx(PRFOmega(gaussian_weight()), 5_000, 1e-3)
        assert decision.used
        assert decision.terms is not None and decision.terms <= 64
        assert decision.error_bound is not None and decision.error_bound <= 1e-3
        assert isinstance(decision.effective, LinearCombinationPRFe)

    def test_tighter_budget_needs_more_terms(self):
        loose = plan_approx(PRFOmega(gaussian_weight()), 5_000, 1e-2)
        tight = plan_approx(PRFOmega(gaussian_weight()), 5_000, 1e-4)
        assert loose.used and tight.used
        assert tight.terms >= loose.terms

    def test_budget_validation(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                plan_approx(PRFOmega(gaussian_weight()), 100, bad)

    def test_prfe_family_already_linear(self):
        assert not plan_approx(PRFe(0.9), 5_000, 1e-3).used
        assert not plan_approx(LinearCombinationPRFe([1.0], [0.9]), 5_000, 1e-3).used

    def test_tuple_factor_falls_back(self):
        rf = PRF(gaussian_weight(), tuple_factor=lambda t: t.score)
        assert not plan_approx(rf, 5_000, 1e-3).used

    def test_complex_weight_falls_back(self):
        rf = PRFOmega(TabulatedWeight(np.exp(1j * np.arange(1, 100))))
        assert not plan_approx(rf, 5_000, 1e-3).used

    def test_tiny_support_falls_back(self):
        assert not plan_approx(PRFOmega(StepWeight(5)), 5_000, 1e-3).used

    def test_steep_discount_cannot_certify(self):
        # NDCG's 1/log2(1+i) is steep at rank 1; the truncated DFT cannot
        # reach 1e-3 there, and the planner must say so rather than
        # silently overshoot the budget.
        decision = plan_approx(PRF(NDCGDiscountWeight()), 5_000, 1e-3)
        assert not decision.used
        assert decision.effective is not None

    def test_exact_decision_keeps_original_spec(self):
        rf = PRFe(0.9)
        decision = plan_approx(rf, 5_000, 1e-3)
        assert decision.effective is rf
        assert decision.terms is None and decision.error_bound is None

    def test_as_dict_is_wire_friendly(self):
        decision = plan_approx(PRFOmega(gaussian_weight()), 5_000, 1e-3)
        summary = decision.as_dict()
        assert set(summary) == {"budget", "used", "terms", "error_bound"}
        assert summary["used"] is True


class TestRealizedError:
    @pytest.mark.parametrize("budget", [1e-2, 1e-3, 1e-4])
    def test_rank_error_within_budget(self, budget):
        relation = make_relation(4_000, seed=1)
        rf = PRFOmega(gaussian_weight())
        engine = Engine()
        decision = engine.approx_decision(relation, rf, budget)
        assert decision.used, "smooth weight must certify at this budget"
        approximate = engine.rank(relation, rf, approx=budget)
        exact = Engine().rank(relation, rf)
        assert max(realized_errors(approximate, exact)) <= budget

    def test_realized_error_within_certified_bound(self):
        relation = make_relation(3_000, seed=2)
        rf = PRFOmega(gaussian_weight())
        engine = Engine()
        decision = engine.approx_decision(relation, rf, 1e-3)
        approximate = engine.rank(relation, rf, approx=1e-3)
        exact = Engine().rank(relation, rf)
        assert max(realized_errors(approximate, exact)) <= decision.error_bound

    def test_ineligible_spec_ranks_exactly(self):
        relation = make_relation(500, seed=3)
        rf = PRFe(0.9)
        with_knob = Engine().rank(relation, rf, approx=1e-3)
        without = Engine().rank(relation, rf)
        assert with_knob.values() == without.values()

    def test_rank_top_k_respects_approx(self):
        relation = make_relation(3_000, seed=4)
        rf = PRFOmega(gaussian_weight())
        engine = Engine()
        result, report = engine.rank_top_k(relation, rf, 10, approx=1e-3)
        full = Engine().rank(relation, rf, approx=1e-3)
        assert result.tids() == full.tids()[:10]
        assert report.k == 10

    def test_rank_batch_respects_approx(self):
        relations = [make_relation(2_000 + 100 * i, seed=10 + i) for i in range(4)]
        rf = PRFOmega(gaussian_weight())
        batched = Engine().rank_batch(relations, rf, approx=1e-3)
        for relation, result in zip(relations, batched):
            single = Engine().rank(relation, rf, approx=1e-3)
            assert result.values() == single.values()

    def test_rank_batch_mixed_eligibility(self):
        # Different sizes may certify differently; the batch must still
        # return each dataset's own budgeted answer, in order.
        relations = [make_relation(20, seed=20), make_relation(2_000, seed=21)]
        rf = PRFOmega(gaussian_weight())
        engine = Engine()
        decisions = [engine.approx_decision(r, rf, 1e-3) for r in relations]
        assert not decisions[0].used and decisions[1].used
        batched = engine.rank_batch(relations, rf, approx=1e-3)
        for relation, result in zip(relations, batched):
            single = Engine().rank(relation, rf, approx=1e-3)
            assert result.values() == single.values()


class TestPlanMetadata:
    def test_plan_records_decision(self):
        relation = make_relation(3_000, seed=5)
        plan = Engine().plan(relation, PRFOmega(gaussian_weight()), approx=1e-3)
        assert isinstance(plan.approx, ApproxDecision)
        assert plan.approx.used
        assert "dft-approx" in plan.algorithm
        assert f"L={plan.approx.terms}" in plan.algorithm

    def test_plan_records_exact_fallback(self):
        relation = make_relation(3_000, seed=6)
        plan = Engine().plan(relation, PRFe(0.9), approx=1e-3)
        assert isinstance(plan.approx, ApproxDecision)
        assert not plan.approx.used
        assert "dft-approx" not in plan.algorithm

    def test_plan_without_budget_has_no_decision(self):
        relation = make_relation(100, seed=7)
        assert Engine().plan(relation, PRFe(0.9)).approx is None

    def test_decisions_are_memoized(self):
        relation = make_relation(3_000, seed=8)
        rf = PRFOmega(gaussian_weight())
        engine = Engine()
        first = engine.approx_decision(relation, rf, 1e-3)
        second = engine.approx_decision(relation, rf, 1e-3)
        assert second is first
        # A different budget is a different plan.
        assert engine.approx_decision(relation, rf, 1e-2) is not first


class TestServiceApprox:
    def test_async_client_forwards_budget(self):
        relation = make_relation(3_000, seed=9)
        rf = PRFOmega(gaussian_weight())

        async def serve():
            async with RankingService(Engine()) as service:
                client = AsyncRankingClient(service)
                return await client.rank_detailed(relation, rf, approx=1e-3)

        reply = asyncio.run(serve())
        assert reply.approx is not None and reply.approx["used"]
        assert reply.approx["budget"] == 1e-3
        exact = Engine().rank(relation, rf)
        assert max(realized_errors(reply.result, exact)) <= 1e-3

    def test_budgeted_and_exact_requests_do_not_coalesce(self):
        relation = make_relation(3_000, seed=11)
        rf = PRFOmega(gaussian_weight())

        async def serve():
            async with RankingService(Engine(), max_delay=0.05) as service:
                client = AsyncRankingClient(service)
                return await asyncio.gather(
                    client.rank_detailed(relation, rf),
                    client.rank_detailed(relation, rf, approx=1e-3),
                )

        exact_reply, budgeted_reply = asyncio.run(serve())
        assert exact_reply.approx is None
        assert budgeted_reply.approx is not None and budgeted_reply.approx["used"]
        reference = Engine().rank(relation, rf)
        assert exact_reply.result.values() == reference.values()
        assert max(realized_errors(budgeted_reply.result, reference)) <= 1e-3

    def test_tcp_round_trip_echoes_decision(self):
        relation = make_relation(2_000, seed=12)
        rf = PRFOmega(gaussian_weight())

        async def serve():
            async with RankingService(Engine(), max_delay=0.005) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    detailed = await client.rank_detailed(relation, rf, k=10, approx=1e-3)
                    exact_detailed = await client.rank_detailed(relation, rf, k=10)
                    top = await client.top_k(relation, rf, 5, approx=1e-3)
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return detailed, exact_detailed, top

        detailed, exact_detailed, top = asyncio.run(serve())
        assert detailed["approx"]["used"] and detailed["approx"]["budget"] == 1e-3
        assert "approx" not in exact_detailed
        local = Engine().rank(relation, rf, approx=1e-3)
        assert [entry["tid"] for entry in detailed["ranking"]] == local.tids()[:10]
        assert top == local.tids()[:5]

    def test_tcp_rejects_bad_budget(self):
        relation = make_relation(50, seed=13)

        async def serve():
            async with RankingService(Engine(), max_delay=0.005) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    await client.rank(relation, PRFe(0.9), approx=-1.0)
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()

        with pytest.raises(RemoteServiceError) as excinfo:
            asyncio.run(serve())
        assert excinfo.value.kind == "protocol"


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=200, max_value=2_000),
    st.sampled_from([1e-2, 1e-3]),
    st.integers(min_value=0, max_value=1 << 20),
)
def test_property_budget_always_honoured(n, budget, seed):
    """Whatever the planner decides, the realized error fits the budget."""
    relation = make_relation(n, seed=seed)
    rf = PRFOmega(gaussian_weight(horizon=500, scale=100.0))
    engine = Engine()
    decision = engine.approx_decision(relation, rf, budget)
    budgeted = engine.rank(relation, rf, approx=budget)
    exact = Engine().rank(relation, rf)
    if decision.used:
        assert max(realized_errors(budgeted, exact)) <= budget
    else:
        assert budgeted.values() == exact.values()
