"""Tests for the unified rank() / rank_distribution() entry points."""

import numpy as np
import pytest

from repro import (
    PRFe,
    PRFOmega,
    positional_probability,
    rank,
    rank_distribution,
    top_k,
)
from repro.andxor.tree import AndXorTree
from repro.core.weights import StepWeight
from repro.graphical import MarkovNetworkRelation
from tests.conftest import random_relation


class TestDispatch:
    def test_rank_on_relation_tree_and_network(self, rng, figure1_tree):
        relation = random_relation(6, rng)
        network = MarkovNetworkRelation.from_independent(relation)
        for data in (relation, figure1_tree, network):
            result = rank(data, PRFe(0.9))
            assert len(result) > 0

    def test_rank_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            rank([1, 2, 3], PRFe(0.5))

    def test_top_k_length_and_validation(self, rng):
        relation = random_relation(10, rng)
        assert len(top_k(relation, PRFe(0.9), 4)) == 4
        with pytest.raises(ValueError):
            top_k(relation, PRFe(0.9), -1)

    def test_rank_distribution_relation(self, example1_relation):
        distribution = rank_distribution(example1_relation, "t3")
        assert distribution[2] == pytest.approx(0.2)
        with pytest.raises(KeyError):
            rank_distribution(example1_relation, "bogus")

    def test_rank_distribution_tree(self, figure1_tree):
        distribution = rank_distribution(figure1_tree, "t4")
        assert distribution[3] == pytest.approx(0.216)

    def test_rank_distribution_network(self, rng):
        relation = random_relation(5, rng)
        network = MarkovNetworkRelation.from_independent(relation)
        tid = relation[0].tid
        assert np.allclose(
            rank_distribution(network, tid), rank_distribution(relation, tid), atol=1e-9
        )

    def test_rank_distribution_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            rank_distribution({"not": "supported"}, "t1")

    def test_positional_probability(self, example1_relation):
        assert positional_probability(example1_relation, "t3", 2) == pytest.approx(0.2)
        assert positional_probability(example1_relation, "t3", 50) == 0.0
        with pytest.raises(ValueError):
            positional_probability(example1_relation, "t3", 0)

    def test_same_function_same_answer_across_models(self, rng):
        """An independent relation must rank identically under all three models."""
        relation = random_relation(6, rng, allow_certain=False)
        tree = AndXorTree.from_independent(relation)
        network = MarkovNetworkRelation.from_independent(relation)
        rf = PRFOmega(StepWeight(3))
        expected = rank(relation, rf).tids()
        assert rank(tree, rf).tids() == expected
        assert rank(network, rf).tids() == expected
