"""Property-based tests (hypothesis) for the independent-tuple algorithms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import PRF, PRFe, ProbabilisticRelation, Tuple, rank
from repro.algorithms.independent import positional_probabilities, prfe_values
from repro.core.possible_worlds import (
    enumerate_worlds,
    prf_by_enumeration,
    rank_distribution_by_enumeration,
)
from repro.core.weights import NDCGDiscountWeight


@st.composite
def relations(draw, min_size=1, max_size=7):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    probabilities = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    scores = draw(
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=size, max_size=size
        )
    )
    tuples = [
        Tuple(f"t{i}", float(scores[i]), float(probabilities[i])) for i in range(size)
    ]
    return ProbabilisticRelation(tuples)


@settings(max_examples=60, deadline=None)
@given(relations())
def test_rank_distribution_sums_to_probability(relation):
    """sum_j Pr(r(t) = j) == Pr(t) for every tuple."""
    ordered, matrix = positional_probabilities(relation)
    for row, t in zip(matrix, ordered):
        assert abs(row.sum() - t.probability) < 1e-9


@settings(max_examples=60, deadline=None)
@given(relations())
def test_rank_distribution_matches_enumeration(relation):
    worlds = enumerate_worlds(relation)
    ordered, matrix = positional_probabilities(relation)
    for i, t in enumerate(ordered):
        exact = rank_distribution_by_enumeration(worlds, t.tid, len(relation))
        assert np.allclose(matrix[i], exact[1:], atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(relations(), st.floats(min_value=0.01, max_value=1.0))
def test_prfe_fast_path_matches_enumeration(relation, alpha):
    worlds = enumerate_worlds(relation)
    ordered, values = prfe_values(relation, alpha)
    for t, value in zip(ordered, values):
        exact = prf_by_enumeration(worlds, t.tid, lambda i: alpha ** i)
        assert abs(value - exact) < 1e-9


@settings(max_examples=40, deadline=None)
@given(relations())
def test_general_prf_matches_enumeration(relation):
    worlds = enumerate_worlds(relation)
    weight = NDCGDiscountWeight()
    result = rank(relation, PRF(weight))
    for t in relation:
        exact = prf_by_enumeration(worlds, t.tid, weight)
        assert abs(result.value_of(t.tid) - exact) < 1e-9


@settings(max_examples=40, deadline=None)
@given(relations(min_size=2), st.data())
def test_prfe_ranking_is_permutation(relation, data):
    alpha = data.draw(st.floats(min_value=0.05, max_value=1.0))
    result = rank(relation, PRFe(alpha))
    assert sorted(str(t) for t in result.tids()) == sorted(str(t.tid) for t in relation)
