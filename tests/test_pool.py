"""Chaos suite for the sharded worker-pool serving tier.

The contracts under test:

* every request *admitted* by the pooled service gets a reply or a
  clean ``ServiceOverloadedError`` — never a hang, never a lost future —
  under kill-mid-batch, delayed-reply, drop-reply and restart-storm
  fault injection;
* replies stay bit-identical to direct ``Engine.rank`` across all three
  correlation models, faults or not;
* fault injection is seeded and deterministic, so every scenario here
  replays exactly;
* fingerprint-affinity routing keeps each worker's cache hot and hot
  fingerprints fan out across replicas;
* ``ServiceStats`` snapshots are atomic under concurrent mutation
  (regression: the TCP ``stats`` path used to read unlocked);
* the pool's counters export through the Prometheus-style ``metrics``
  op and the plain ``GET /metrics`` HTTP fast path.

Most scenarios run on :class:`ThreadWorker` (simulated death, no
process churn — deterministic and fast); a small set exercises real
:class:`ProcessWorker` processes including a real mid-batch kill.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import Engine, PRFe, PRFOmega, ProbabilisticRelation, Tuple
from repro.andxor.tree import AndXorTree
from repro.core.weights import StepWeight
from repro.engine.cache import dataset_fingerprint
from repro.graphical import MarkovChainRelation
from repro.service import (
    Fault,
    FaultPlan,
    PooledRankingService,
    ProcessWorker,
    ServiceOverloadedError,
    ServiceReply,
    ServiceStats,
    TCPRankingClient,
    ThreadWorker,
    WorkerDiedError,
    WorkerPool,
    render_metrics,
    serve_tcp,
)
from repro.service.__main__ import build_parser


def run(coro):
    return asyncio.run(coro)


def make_relation(n: int, seed: int, name: str = "") -> ProbabilisticRelation:
    rng = np.random.default_rng(seed)
    return ProbabilisticRelation.from_arrays(
        rng.uniform(0.0, 1000.0, n), rng.uniform(0.0, 1.0, n), name=name or f"rel-{seed}"
    )


def make_tree(seed: int) -> AndXorTree:
    rng = np.random.default_rng(seed)
    groups, counter = [], 0
    for _ in range(6):
        group = []
        for _ in range(int(rng.integers(1, 4))):
            group.append(
                Tuple(f"x{counter}", float(rng.uniform(0, 100)), float(rng.uniform(0.05, 0.3)))
            )
            counter += 1
        groups.append(group)
    return AndXorTree.from_x_tuples(groups, name=f"tree-{seed}")


def make_network(seed: int):
    rng = np.random.default_rng(seed)
    tuples = [
        Tuple(f"m{i}", float(score), 1.0)
        for i, score in enumerate(rng.permutation(80)[:8])
    ]
    return MarkovChainRelation.homogeneous(tuples, 0.6, 0.7, 0.8, name=f"net-{seed}").to_markov_network()


def assert_bitwise_equal(result, reference, context=""):
    assert result.tids() == reference.tids(), context
    assert [item.value for item in result] == [item.value for item in reference], context


def thread_pool(shards: int = 2, **kwargs) -> WorkerPool:
    """A pool of in-process workers with fast chaos-friendly timings."""
    kwargs.setdefault("worker_factory", lambda shard: ThreadWorker(shard))
    kwargs.setdefault("retry_backoff", 0.001)
    return WorkerPool(shards, **kwargs)


class SlowEngine(Engine):
    """An engine whose batches block until released (shedding tests)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.release = threading.Event()

    def rank_batch(self, datasets, rf, **kwargs):
        self.release.wait(5.0)
        return super().rank_batch(datasets, rf, **kwargs)


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_scripted_fault_fires_once_on_matching_dispatch(self):
        plan = FaultPlan([Fault("kill", shard=1, batch=2)])
        assert plan.draw(0, 2) is None
        assert plan.draw(1, 1) is None
        fault = plan.draw(1, 2)
        assert fault is not None and fault.kind == "kill"
        assert plan.draw(1, 2) is None  # fired exactly once
        assert plan.injected == 1

    def test_seeded_draws_are_deterministic_and_seed_sensitive(self):
        a = FaultPlan(seed=7, kill_rate=0.2, delay_rate=0.2, drop_rate=0.2)
        b = FaultPlan(seed=7, kill_rate=0.2, delay_rate=0.2, drop_rate=0.2)
        c = FaultPlan(seed=8, kill_rate=0.2, delay_rate=0.2, drop_rate=0.2)
        draws_a = [(s, q, getattr(a.draw(s, q), "kind", None)) for s in range(4) for q in range(32)]
        draws_b = [(s, q, getattr(b.draw(s, q), "kind", None)) for s in range(4) for q in range(32)]
        draws_c = [(s, q, getattr(c.draw(s, q), "kind", None)) for s in range(4) for q in range(32)]
        assert draws_a == draws_b
        assert draws_a != draws_c
        kinds = {kind for _, _, kind in draws_a if kind}
        assert kinds == {"kill", "delay", "drop"}

    def test_max_faults_caps_injection(self):
        plan = FaultPlan(seed=3, kill_rate=1.0, max_faults=2)
        faults = [plan.draw(0, q) for q in range(10)]
        assert sum(f is not None for f in faults) == 2
        assert plan.injected == 2
        assert all(f is None for f in faults[2:])


# ----------------------------------------------------------------------
# Worker primitives
# ----------------------------------------------------------------------
class TestThreadWorker:
    def test_submit_matches_direct_engine(self):
        rel = make_relation(40, 1)
        worker = ThreadWorker(0)
        try:
            results = worker.submit([rel], PRFe(0.9)).result(timeout=30)
            assert_bitwise_equal(results[0], Engine().rank(rel, PRFe(0.9)))
        finally:
            worker.stop()

    def test_kill_fails_outstanding_and_rejects_new_work(self):
        rel = make_relation(30, 2)
        engine = SlowEngine()
        worker = ThreadWorker(0, engine=engine)
        future = worker.submit([rel], PRFe(0.9))
        worker.kill()
        engine.release.set()
        with pytest.raises(WorkerDiedError):
            future.result(timeout=5)
        assert not worker.alive
        with pytest.raises(WorkerDiedError):
            worker.submit([rel], PRFe(0.9))

    def test_ping_and_warm(self):
        rel = make_relation(25, 3)
        worker = ThreadWorker(0)
        try:
            assert worker.ping(timeout=5) >= 0.0
            assert worker.warm([rel], [PRFe(0.9)]) == 1
            assert worker.engine.cache_info()["entries"] == 1
        finally:
            worker.stop()


class TestProcessWorker:
    def test_submit_matches_direct_engine_and_ships_once(self):
        rel = make_relation(40, 4)
        worker = ProcessWorker(0)
        try:
            for _ in range(2):
                results = worker.submit([rel], PRFe(0.9)).result(timeout=60)
                assert_bitwise_equal(results[0], Engine().rank(rel, PRFe(0.9)))
            assert list(worker._shipped) == [dataset_fingerprint(rel)]
            assert worker.ping(timeout=30) >= 0.0
        finally:
            worker.stop()

    def test_need_resend_recovers_from_worker_eviction(self):
        rels = [make_relation(20, seed) for seed in (5, 6)]
        reference = [Engine().rank(rel, PRFe(0.9)) for rel in rels]
        worker = ProcessWorker(0, dataset_cache_entries=1)
        try:
            # Alternating datasets with a 1-entry worker LRU forces the
            # worker to reply ``need`` and the parent to re-send.
            for _ in range(3):
                for rel, expected in zip(rels, reference):
                    results = worker.submit([rel], PRFe(0.9)).result(timeout=60)
                    assert_bitwise_equal(results[0], expected)
        finally:
            worker.stop()

    def test_kill_fails_outstanding_futures(self):
        rel = make_relation(20, 7)
        worker = ProcessWorker(0)
        worker.kill()
        assert not worker.alive
        with pytest.raises(WorkerDiedError):
            worker.submit([rel], PRFe(0.9))

    def test_worker_errors_are_forwarded_not_fatal(self):
        worker = ProcessWorker(0)
        try:
            rel = make_relation(10, 8)
            with pytest.raises(Exception):
                worker.submit([rel], "not a ranking function").result(timeout=60)
            # The worker survives a per-job error.
            results = worker.submit([rel], PRFe(0.9)).result(timeout=60)
            assert_bitwise_equal(results[0], Engine().rank(rel, PRFe(0.9)))
        finally:
            worker.stop()


# ----------------------------------------------------------------------
# Chaos scenarios (seeded, deterministic)
# ----------------------------------------------------------------------
class TestChaosScenarios:
    def test_kill_mid_batch_recovers_bit_identical_all_models(self):
        datasets = [make_relation(30, 10), make_tree(11), make_network(12)]
        rf = PRFe(0.9)
        engine = Engine()
        reference = [engine.rank(data, rf, name=getattr(data, "name", "")) for data in datasets]

        async def scenario():
            # One kill per shard's first dispatch: every dataset's first
            # batch dies mid-flight and must be re-dispatched.
            plan = FaultPlan([Fault("kill", shard=s, batch=0) for s in range(2)])
            pool = thread_pool(2, fault_plan=plan)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                replies = await asyncio.gather(
                    *(
                        service.submit(data, rf, name=getattr(data, "name", ""))
                        for data in datasets
                    )
                )
                snapshot = service.pool.snapshot()
            return replies, snapshot

        replies, snapshot = run(scenario())
        for reply, expected in zip(replies, reference):
            assert isinstance(reply, ServiceReply)
            assert_bitwise_equal(reply.result, expected)
        assert snapshot["faults_injected"] >= 1
        assert snapshot["restarts_total"] >= 1
        assert all(snapshot["alive"])

    def test_delayed_reply_still_correct(self):
        rel = make_relation(25, 13)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            plan = FaultPlan([Fault("delay", batch=0, delay=0.05)])
            pool = thread_pool(1, fault_plan=plan)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                return reply, service.pool.snapshot()

        reply, snapshot = run(scenario())
        assert_bitwise_equal(reply.result, expected)
        assert snapshot["faults_injected"] == 1
        assert snapshot["restarts_total"] == 0  # a delay is not a death

    def test_dropped_reply_recovers_via_timeout_and_restart(self):
        rel = make_relation(25, 14)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            plan = FaultPlan([Fault("drop", batch=0)])
            pool = thread_pool(1, fault_plan=plan, reply_timeout=0.1)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                return reply, service.pool.snapshot()

        reply, snapshot = run(scenario())
        assert_bitwise_equal(reply.result, expected)
        assert snapshot["totals"]["timeouts"] == 1
        assert snapshot["restarts_total"] == 1  # the wedged worker was replaced

    def test_slow_batch_passes_liveness_probe_and_is_not_killed(self):
        """A healthy-but-slow worker survives a missed reply deadline.

        Regression: the timeout path used to kill the worker outright,
        cascading one slow batch into retries and recomputation of its
        unrelated in-flight work.  Now the worker is ping-probed first
        and the (already computed) reply lands during the grace period.
        """
        rel = make_relation(25, 31)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        class SlowishEngine(Engine):
            def rank_batch(self, datasets, rf, **kwargs):
                time.sleep(0.3)
                return super().rank_batch(datasets, rf, **kwargs)

        async def scenario():
            pool = WorkerPool(
                1,
                worker_factory=lambda shard: ThreadWorker(shard, engine=SlowishEngine()),
                reply_timeout=0.05,
                reply_timeout_per_item=0.0,
                retry_backoff=0.001,
            )
            with pool:
                results = await pool.execute(0, [rel], PRFe(0.9))
                return results, pool.snapshot()

        results, snapshot = run(scenario())
        assert_bitwise_equal(results[0], expected)
        assert snapshot["totals"]["timeouts"] == 0
        assert snapshot["restarts_total"] == 0
        assert all(snapshot["alive"])

    def test_window_failure_resolves_every_request(self):
        """An exception before the per-shard error paths still replies.

        Regression: a failure in the fire-and-forget window task (e.g.
        routing) used to leave every request of the window unresolved
        forever and leak their admission slots permanently.
        """
        rel = make_relation(25, 32)

        def exploding_route(fingerprint):
            raise RuntimeError("router exploded")

        async def scenario():
            pool = thread_pool(1)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                original = service.pool.route
                service.pool.route = exploding_route
                with pytest.raises(RuntimeError, match="router exploded"):
                    await service.submit(rel, PRFe(0.9), name=rel.name)
                service.pool.route = original
                # The admission slot was released: the service still serves.
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                return reply, service.pending(), service.stats.as_dict()

        reply, pending, stats = run(scenario())
        assert isinstance(reply, ServiceReply)
        assert pending == 0
        assert stats["errors"] >= 1

    def test_restart_storm_no_admitted_request_is_lost(self):
        """The headline chaos contract, under a seeded kill storm.

        Every admitted request resolves to a bit-identical reply or a
        clean ``ServiceOverloadedError``; once the fault budget is spent
        the pool converges back to all-shards-alive and serves again.
        """
        rf = PRFe(0.9)
        datasets = [make_relation(20, seed) for seed in range(20, 28)]
        engine = Engine()
        reference = {
            dataset_fingerprint(data): engine.rank(data, rf, name=data.name)
            for data in datasets
        }

        async def scenario():
            plan = FaultPlan(seed=42, kill_rate=0.35, max_faults=6)
            pool = thread_pool(2, fault_plan=plan, reply_timeout=5.0)
            async with PooledRankingService(
                pool, max_delay=0.001, cache_ttl=0.0
            ) as service:
                outcomes = await asyncio.gather(
                    *(
                        service.submit(datasets[i % len(datasets)], rf,
                                       name=datasets[i % len(datasets)].name)
                        for i in range(40)
                    ),
                    return_exceptions=True,
                )
                # Convergence: the storm is over (max_faults), so a fresh
                # request must succeed and every shard must be healthy.
                final = await service.submit(datasets[0], rf, name=datasets[0].name)
                health = service.pool.health()
                stats = service.stats.as_dict()
                pending = service.pending()
            return outcomes, final, health, stats, pending

        outcomes, final, health, stats, pending = run(scenario())
        assert len(outcomes) == 40
        served = 0
        for i, outcome in enumerate(outcomes):
            if isinstance(outcome, ServiceOverloadedError):
                continue
            assert isinstance(outcome, ServiceReply), f"request {i}: {outcome!r}"
            expected = reference[dataset_fingerprint(datasets[i % len(datasets)])]
            assert_bitwise_equal(outcome.result, expected, f"request {i}")
            served += 1
        # Every outcome is a reply or a clean shed -- nothing hung, nothing lost.
        shed = sum(isinstance(o, ServiceOverloadedError) for o in outcomes)
        assert served + shed == 40
        assert served >= 1
        assert_bitwise_equal(final.result, reference[dataset_fingerprint(datasets[0])])
        assert all(health["alive"])
        assert pending == 0  # every admitted request was disposed of
        assert stats["requests"] == 41

    def test_retry_exhaustion_sheds_cleanly(self):
        rel = make_relation(20, 30)

        async def scenario():
            plan = FaultPlan(seed=1, kill_rate=1.0)
            pool = thread_pool(1, fault_plan=plan, max_retries=2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(rel, PRFe(0.9))
                assert service.pending() == 0

        run(scenario())

    def test_restart_budget_exhaustion_sheds_cleanly(self):
        rel = make_relation(20, 31)

        async def scenario():
            plan = FaultPlan(seed=2, kill_rate=1.0)
            pool = thread_pool(1, fault_plan=plan, max_restarts=0)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(rel, PRFe(0.9))

        run(scenario())

    def test_real_process_kill_mid_batch_recovers(self):
        """A real SIGKILL on a ProcessWorker mid-batch, not a simulation.

        The relation is large enough that the worker cannot answer
        before the parent's SIGKILL lands, so the batch reliably dies
        mid-flight and must be re-dispatched to a respawned worker.
        """
        rel = make_relation(5_000, 32)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            plan = FaultPlan([Fault("kill", batch=0)])
            pool = WorkerPool(1, fault_plan=plan, retry_backoff=0.01)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                probe = await service.pool.probe(timeout=30)
                return reply, service.pool.snapshot(), probe

        reply, snapshot, probe = run(scenario())
        assert_bitwise_equal(reply.result, expected)
        assert snapshot["restarts_total"] == 1
        assert all(latency is not None for latency in probe)


# ----------------------------------------------------------------------
# Pool mechanics: shedding, restart, affinity, warm-up
# ----------------------------------------------------------------------
class TestPoolMechanics:
    def test_per_shard_queue_bound_sheds(self):
        rel = make_relation(20, 40)
        engine = SlowEngine()

        async def scenario():
            pool = WorkerPool(
                1,
                worker_factory=lambda shard: ThreadWorker(shard, engine=engine),
                max_shard_depth=1,
            )
            pool.start()
            try:
                first = asyncio.ensure_future(pool.execute(0, [rel], PRFe(0.9)))
                await asyncio.sleep(0.01)  # first occupies the only slot
                with pytest.raises(ServiceOverloadedError):
                    await pool.execute(0, [rel], PRFe(0.9))
                engine.release.set()
                results = await first
                assert len(results) == 1
                assert pool.shard_stats[0].shed == 1
                assert pool.depth(0) == 0
            finally:
                engine.release.set()
                await asyncio.to_thread(pool.close)

        run(scenario())

    def test_graceful_restart_drains_and_respawns(self):
        rel = make_relation(20, 41)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            pool = thread_pool(1)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                before = service.pool._workers[0]
                await service.pool.restart(0)
                after = service.pool._workers[0]
                assert after is not before
                assert not before.alive
                assert after.alive
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                assert_bitwise_equal(reply.result, expected)
                assert service.pool.snapshot()["restarts_total"] == 1

        run(scenario())

    def test_respawn_does_not_block_the_event_loop(self):
        """A worker respawn must not stall the loop for the spawn duration.

        Regression (ASYNC-hygiene sweep): ``_dispatch_once`` called
        ``_ensure_worker`` inline, so respawning a dead worker ran the
        factory (a process fork in production, 0.3s here) plus the dead
        worker's ``stop()`` join *on the event loop*, freezing every
        coalescing window and connection for that long.  The respawn now
        runs on a worker thread; a heartbeat task must keep ticking
        through it, and concurrent dispatches must share one respawn.
        """
        rel = make_relation(20, 43)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)
        spawn_seconds = 0.3
        spawned = []

        def slow_factory(shard):
            time.sleep(spawn_seconds)  # stands in for a process fork + warm-up
            worker = ThreadWorker(shard)
            spawned.append(worker)
            return worker

        async def scenario():
            pool = WorkerPool(
                1, worker_factory=slow_factory, retry_backoff=0.001
            )
            pool.start()
            try:
                pool._workers[0].kill()  # next dispatch must respawn
                gaps = []
                ticking = True

                async def heartbeat():
                    last = time.monotonic()
                    while ticking:
                        await asyncio.sleep(0.005)
                        now = time.monotonic()
                        gaps.append(now - last)
                        last = now

                beat = asyncio.ensure_future(heartbeat())
                results = await asyncio.gather(
                    pool.execute(0, [rel], PRFe(0.9)),
                    pool.execute(0, [rel], PRFe(0.9)),
                )
                ticking = False
                await beat
                return results, max(gaps), pool.snapshot()
            finally:
                await asyncio.to_thread(pool.close)

        results, max_gap, snapshot = run(scenario())
        for batch in results:
            assert_bitwise_equal(batch[0], expected)
        # Pre-fix the loop froze for the whole spawn; post-fix the
        # heartbeat keeps ticking (generous margin for CI scheduling).
        assert max_gap < spawn_seconds * 0.67, f"event loop stalled {max_gap:.3f}s"
        assert snapshot["restarts_total"] == 1  # concurrent dispatches shared it
        assert len(spawned) == 2  # initial start + one respawn

    def test_affinity_routing_keeps_worker_caches_disjoint_and_hot(self):
        rf = PRFe(0.9)
        datasets = [make_relation(20, seed) for seed in range(50, 58)]
        router_shards = 2

        async def scenario():
            pool = thread_pool(router_shards, hot_threshold=0)  # fan-out off
            async with PooledRankingService(
                pool, max_delay=0.001, cache_ttl=0.0
            ) as service:
                for _ in range(2):
                    for data in datasets:
                        await service.submit(data, rf, name=data.name)
                return service.pool

        pool = run(scenario())
        assigned = {
            shard: [
                data for data in datasets
                if pool.router.shard(dataset_fingerprint(data)) == shard
            ]
            for shard in range(router_shards)
        }
        for shard in range(router_shards):
            worker = pool._workers[shard]
            info = worker.engine.cache_info()
            # Each worker cached exactly its own slice of the universe --
            # and the second pass hit those entries.
            assert info["entries"] == len(assigned[shard])
            assert info["hits"] > 0

    def test_hot_fingerprint_fans_out_across_replicas(self):
        pool = thread_pool(4, hot_threshold=4, replicas=2)
        try:
            fingerprint = "hot-dataset"
            shards = {pool.route(fingerprint) for _ in range(32)}
            preference = pool.router.preference(fingerprint, 2)
            assert shards == set(preference)
            assert len(shards) == 2
        finally:
            pool.close()

    def test_pool_warm_ships_hot_set_to_affine_workers(self):
        rf = PRFe(0.9)
        datasets = [make_relation(20, seed) for seed in range(60, 66)]
        pool = thread_pool(2)
        pool.start()
        try:
            assert pool.warm(datasets, [rf]) == len(datasets)
            for shard in range(2):
                expected = sum(
                    1 for data in datasets
                    if pool.router.shard(dataset_fingerprint(data)) == shard
                )
                assert pool._workers[shard].engine.cache_info()["entries"] == expected
        finally:
            pool.close()

    def test_engine_warm_hook_fills_cache(self):
        engine = Engine()
        datasets = [make_relation(20, 70), make_tree(71)]
        assert engine.warm(datasets, [PRFe(0.9), PRFOmega(StepWeight(5))]) == 2
        assert engine.cache_info()["entries"] == 2

    def test_pool_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, max_shard_depth=0)

    def test_health_reports_dead_worker_until_next_dispatch(self):
        pool = thread_pool(2)
        pool.start()
        try:
            pool._workers[1].kill()
            health = pool.health()
            assert health["alive"] == [True, False]
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Pooled service semantics (dedup/cache/identity preserved)
# ----------------------------------------------------------------------
class TestPooledService:
    def test_dedup_and_cache_still_apply(self):
        rel = make_relation(20, 80)
        rf = PRFe(0.9)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.005) as service:
                first, second = await asyncio.gather(
                    service.submit(rel, rf, name=rel.name),
                    service.submit(rel, rf, name=rel.name),
                )
                third = await service.submit(rel, rf, name=rel.name)
                return first, second, third, service.stats.as_dict()

        first, second, third, stats = run(scenario())
        assert_bitwise_equal(first.result, second.result)
        assert first.deduplicated or second.deduplicated
        assert third.cached
        assert stats["deduplicated"] == 1
        assert stats["cache_hits"] == 1

    def test_mixed_model_window_partitions_by_shard(self):
        rf = PRFe(0.9)
        datasets = [make_relation(20, 90), make_tree(91), make_network(92),
                    make_relation(20, 93)]
        engine = Engine()
        reference = [engine.rank(d, rf, name=getattr(d, "name", "")) for d in datasets]

        async def scenario():
            pool = thread_pool(3)
            async with PooledRankingService(pool, max_delay=0.01) as service:
                return await asyncio.gather(
                    *(
                        service.submit(d, rf, name=getattr(d, "name", ""))
                        for d in datasets
                    )
                )

        replies = run(scenario())
        for reply, expected in zip(replies, reference):
            assert_bitwise_equal(reply.result, expected)

    def test_top_k_and_approx_ride_the_pool(self):
        rel = make_relation(50, 94)
        engine = Engine()
        expected_topk = engine.rank(rel, PRFe(0.9), name=rel.name, top_k=5)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                topk = await service.submit(rel, PRFe(0.9), name=rel.name, top_k=5)
                approx = await service.submit(
                    rel, PRFOmega(StepWeight(7)), name=rel.name, approx=1e-3
                )
                return topk, approx

        topk, approx = run(scenario())
        assert_bitwise_equal(topk.result, expected_topk)
        assert topk.k == 5
        assert approx.approx is not None and approx.approx["budget"] == 1e-3

    def test_cli_parser_accepts_pool_flags(self):
        args = build_parser().parse_args(
            ["--pool-shards", "4", "--shard-depth", "8", "--pool-retries", "1",
             "--reply-timeout", "2.5", "--pool-replicas", "3"]
        )
        assert args.pool_shards == 4
        assert args.shard_depth == 8
        assert args.pool_retries == 1
        assert args.reply_timeout == 2.5
        assert args.pool_replicas == 3


# ----------------------------------------------------------------------
# Atomic stats snapshots (regression)
# ----------------------------------------------------------------------
class TestStatsAtomicity:
    def test_snapshots_never_observe_partial_updates(self):
        """Regression: stats reads used to race the batching loop's writes.

        Two counters incremented in one :meth:`ServiceStats.add` call
        must never be observed out of sync by a concurrent
        :meth:`as_dict` snapshot.
        """
        stats = ServiceStats()
        stop = threading.Event()
        violations: list[dict] = []

        def hammer_reads():
            while not stop.is_set():
                snapshot = stats.as_dict()
                if snapshot["requests"] != snapshot["executed"]:
                    violations.append(snapshot)

        readers = [threading.Thread(target=hammer_reads) for _ in range(2)]
        for reader in readers:
            reader.start()
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            stats.add(requests=1, executed=1)
        stop.set()
        for reader in readers:
            reader.join()
        assert not violations, violations[:3]
        snapshot = stats.as_dict()
        assert snapshot["requests"] == snapshot["executed"] > 0

    def test_observe_batch_is_atomic_with_largest_batch(self):
        stats = ServiceStats()
        stop = threading.Event()
        violations: list[dict] = []

        def hammer_reads():
            while not stop.is_set():
                snapshot = stats.as_dict()
                if snapshot["executed"] != 3 * snapshot["batches"]:
                    violations.append(snapshot)

        reader = threading.Thread(target=hammer_reads)
        reader.start()
        for _ in range(20_000):
            stats.observe_batch(3)
        stop.set()
        reader.join()
        assert not violations, violations[:3]
        assert stats.as_dict()["largest_batch"] == 3

    def test_stats_snapshot_during_pooled_load(self):
        """The TCP ``stats`` path stays consistent while windows execute."""
        rf = PRFe(0.9)
        datasets = [make_relation(15, seed) for seed in range(100, 108)]

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(
                pool, max_delay=0.001, cache_ttl=0.0
            ) as service:
                submissions = [
                    service.submit(datasets[i % len(datasets)], rf)
                    for i in range(32)
                ]
                snapshots = []
                gather = asyncio.gather(*submissions, return_exceptions=True)
                for _ in range(50):
                    snapshots.append(service.stats_snapshot())
                    await asyncio.sleep(0)
                outcomes = await gather
                snapshots.append(service.stats_snapshot())
                return outcomes, snapshots

        outcomes, snapshots = run(scenario())
        assert all(isinstance(o, ServiceReply) for o in outcomes)
        for snapshot in snapshots:
            disposed = (
                snapshot["cache_hits"] + snapshot["deduplicated"] + snapshot["shed"]
            )
            assert snapshot["requests"] >= disposed
            assert snapshot["executed"] >= snapshot["batches"] >= 0


# ----------------------------------------------------------------------
# Metrics endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_render_metrics_covers_service_and_pool_counters(self):
        rel = make_relation(20, 110)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                await service.submit(rel, PRFe(0.9), name=rel.name)
                return render_metrics(service.stats_snapshot())

        text = run(scenario())
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_total 1" in text
        assert 'repro_pool_shard_up{shard="0"} 1' in text
        assert 'repro_pool_shard_depth{shard="1"} 0' in text
        assert 'repro_pool_dispatched_total{shard="' in text
        assert "repro_pool_worker_restarts_total 0" in text
        # Each metric family appears exactly once (labeled and unlabeled
        # samples must not share a name in a Prometheus exposition).
        families = [
            line.split()[2] for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(families) == len(set(families))
        assert text.endswith("\n")

    def test_metrics_op_over_tcp(self):
        rel = make_relation(20, 111)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    await client.rank(rel, PRFe(0.9), name=rel.name)
                finally:
                    await client.close()
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b'{"id": 1, "op": "metrics"}\n')
                await writer.drain()
                import json

                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return response

        response = run(scenario())
        assert response["ok"] is True
        assert "repro_service_requests_total" in response["metrics"]
        assert "repro_pool_shards" in response["metrics"]

    def test_http_get_metrics_fast_path(self):
        rel = make_relation(20, 112)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                await service.submit(rel, PRFe(0.9), name=rel.name)
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return raw.decode()

        raw = run(scenario())
        head, _, body = raw.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain" in head
        assert "repro_service_requests_total 1" in body
        assert f"Content-Length: {len(body.encode())}" in head
