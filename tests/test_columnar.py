"""Tests for the columnar data plane (``ColumnarRelation`` and friends).

The core contract: a :class:`~repro.core.columnar.ColumnarRelation` is
indistinguishable from the tuple-backed
:class:`~repro.core.tuples.ProbabilisticRelation` it mirrors — same
fingerprints (so both hit the same engine cache entries), bit-identical
``rank`` / ``rank_top_k`` output for every member of the PRF family, and
unchanged dispatch for the correlated (and/xor, Markov) models.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    PRF,
    Engine,
    LinearCombinationPRFe,
    PRFOmega,
    PRFe,
    ProbabilisticRelation,
    Tuple,
    rank,
)
from repro.andxor.tree import AndXorTree
from repro.core.columnar import ColumnarRelation
from repro.core.result import ColumnarRankingResult, RankingResult
from repro.core.weights import NDCGDiscountWeight, StepWeight
from repro.datasets import (
    generate_independent,
    load_columnar,
    load_relation_csv,
    save_columnar,
    save_relation_csv,
)
from repro.engine.cache import dataset_fingerprint
from repro.graphical import MarkovNetworkRelation

FAMILY = [
    pytest.param(PRFe(0.95), id="PRFe-real"),
    pytest.param(PRFe(0.5 + 0.25j), id="PRFe-complex"),
    pytest.param(PRFOmega(StepWeight(10)), id="PRFomega-step"),
    pytest.param(PRFOmega([0.9, 0.5, 0.25, 0.1]), id="PRFomega-tabulated"),
    pytest.param(PRF(NDCGDiscountWeight()), id="PRF-general"),
    pytest.param(
        PRF(NDCGDiscountWeight(), tuple_factor=lambda t: t.score),
        id="PRF-tuple-factor",
    ),
    pytest.param(
        LinearCombinationPRFe([0.6, 0.4j], [0.9, 0.4 + 0.1j]), id="LinearCombinationPRFe"
    ),
]


def make_pair(n, rng, name="pair"):
    """The same relation in tuple and columnar form."""
    scores = rng.uniform(0.0, 1000.0, size=n)
    probabilities = rng.uniform(0.0, 1.0, size=n)
    tuple_form = ProbabilisticRelation.from_arrays(scores, probabilities, name=name)
    columnar_form = ColumnarRelation(scores, probabilities, name=name)
    return tuple_form, columnar_form


def assert_same_result(a: RankingResult, b: RankingResult) -> None:
    """Bit-identical rankings: same order, same tids, same complex values."""
    assert a.tids() == b.tids()
    va, vb = a.values(), b.values()
    assert va.keys() == vb.keys()
    for tid in va:
        assert va[tid] == vb[tid]


class TestConstruction:
    def test_adopts_contiguous_float64_without_copy(self):
        scores = np.ascontiguousarray([3.0, 2.0, 1.0])
        probabilities = np.ascontiguousarray([0.5, 0.5, 0.5])
        relation = ColumnarRelation(scores, probabilities)
        assert relation.scores() is scores
        assert relation.probabilities() is probabilities

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRelation([1.0, 2.0], [0.5])

    def test_non_finite_scores_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRelation([np.inf], [0.5])

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRelation([1.0], [1.5])

    def test_probability_tolerance_clamps_like_tuple(self):
        relation = ColumnarRelation([1.0], [1.0 + 1e-10])
        assert relation.probabilities()[0] == 1.0
        assert relation[0].probability == Tuple("t1", 1.0, 1.0 + 1e-10).probability

    def test_duplicate_tids_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRelation([1.0, 2.0], [0.5, 0.5], tids=["a", "a"])

    def test_tid_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRelation([1.0, 2.0], [0.5, 0.5], tids=["a"])


class TestTupleCompatibility:
    def test_iteration_matches_tuple_relation(self, rng):
        tuple_form, columnar_form = make_pair(17, rng)
        assert len(columnar_form) == len(tuple_form)
        for a, b in zip(columnar_form, tuple_form):
            assert a == b

    def test_indexing_contains_get(self, rng):
        _, columnar_form = make_pair(9, rng)
        assert columnar_form[3].tid == "t4"
        assert "t4" in columnar_form
        assert "missing" not in columnar_form
        assert columnar_form.get("t4") == columnar_form[3]
        with pytest.raises(KeyError):
            columnar_form.get("missing")

    def test_sorted_by_score_matches(self, rng):
        tuple_form, columnar_form = make_pair(25, rng)
        assert columnar_form.sorted_by_score() == tuple_form.sorted_by_score()
        assert columnar_form.score_rank_index() == tuple_form.score_rank_index()

    def test_sorted_by_score_breaks_ties_by_position(self):
        relation = ColumnarRelation([5.0, 7.0, 5.0], [0.1, 0.2, 0.3])
        assert [t.tid for t in relation.sorted_by_score()] == ["t2", "t1", "t3"]

    def test_order_permutation_consistent_with_sorted_columns(self, rng):
        _, columnar_form = make_pair(31, rng)
        order = columnar_form.order()
        assert np.array_equal(columnar_form.sorted_scores(), columnar_form.scores()[order])
        assert np.array_equal(
            columnar_form.sorted_probabilities(), columnar_form.probabilities()[order]
        )

    def test_implicit_tids_match_from_arrays(self, rng):
        tuple_form, columnar_form = make_pair(7, rng)
        assert columnar_form.has_implicit_tids
        assert columnar_form.tid_values() == [t.tid for t in tuple_form]
        assert columnar_form.tid_of(0) == "t1"

    def test_subset(self, rng):
        _, columnar_form = make_pair(10, rng)
        sub = columnar_form.subset(["t2", "t5"])
        assert isinstance(sub, ColumnarRelation)
        assert sub.tid_values() == ["t2", "t5"]
        assert sub.scores()[0] == columnar_form.scores()[1]


class TestShims:
    def test_round_trip_through_columnar(self, rng):
        tuple_form, _ = make_pair(12, rng, name="shim")
        columnar_form = tuple_form.to_columnar()
        assert isinstance(columnar_form, ColumnarRelation)
        back = ProbabilisticRelation.from_columnar(columnar_form)
        assert isinstance(back, ProbabilisticRelation)
        assert back.name == tuple_form.name
        assert list(back) == list(tuple_form)
        assert dataset_fingerprint(back) == dataset_fingerprint(tuple_form)

    def test_to_columnar_rejects_attributes(self):
        relation = ProbabilisticRelation(
            [Tuple("t1", 1.0, 0.5, attributes={"source": "VIS"})]
        )
        with pytest.raises(ValueError):
            relation.to_columnar()

    def test_from_relation_preserves_explicit_tids(self):
        relation = ProbabilisticRelation(
            [Tuple("alpha", 2.0, 0.5), Tuple("beta", 1.0, 0.25)], name="named"
        )
        columnar_form = ColumnarRelation.from_relation(relation)
        assert not columnar_form.has_implicit_tids
        assert columnar_form.tid_values() == ["alpha", "beta"]
        assert list(columnar_form.to_relation()) == list(relation)


class TestFingerprints:
    def test_columnar_fingerprint_equals_tuple_fingerprint(self, rng):
        tuple_form, columnar_form = make_pair(40, rng)
        assert dataset_fingerprint(columnar_form) == dataset_fingerprint(tuple_form)

    def test_explicit_tids_change_fingerprint(self, rng):
        _, columnar_form = make_pair(6, rng)
        renamed = ColumnarRelation(
            columnar_form.scores(),
            columnar_form.probabilities(),
            tids=[f"x{i}" for i in range(6)],
        )
        assert dataset_fingerprint(renamed) != dataset_fingerprint(columnar_form)

    def test_content_equal_columnar_relations_share_cache_entries(self, rng):
        scores = rng.uniform(0.0, 1000.0, size=30)
        probabilities = rng.uniform(0.0, 1.0, size=30)
        first = ColumnarRelation(scores, probabilities, name="a")
        second = ColumnarRelation(scores.copy(), probabilities.copy(), name="b")
        engine = Engine()
        engine.rank(first, PRFe(0.9))
        before = engine.cache.stats.hits
        result = engine.rank(second, PRFe(0.9))
        assert engine.cache.stats.hits > before
        # The warm result refers to the caller's own relation object.
        assert result.relation is second


class TestRankingEquivalence:
    @pytest.mark.parametrize("rf", FAMILY)
    def test_rank_bit_identical(self, rf, rng):
        tuple_form, columnar_form = make_pair(60, rng)
        assert_same_result(Engine().rank(tuple_form, rf), Engine().rank(columnar_form, rf))

    @pytest.mark.parametrize("rf", FAMILY)
    def test_rank_top_k_bit_identical(self, rf, rng):
        tuple_form, columnar_form = make_pair(60, rng)
        a, report_a = Engine().rank_top_k(tuple_form, rf, 7)
        b, report_b = Engine().rank_top_k(columnar_form, rf, 7)
        assert_same_result(a, b)
        assert report_a.k == report_b.k == 7

    def test_rank_batch_mixed_forms(self, rng):
        pairs = [make_pair(int(rng.integers(5, 30)), rng, name=f"p{i}") for i in range(6)]
        rf = PRFe(0.9)
        tuple_results = Engine().rank_batch([t for t, _ in pairs], rf)
        columnar_results = Engine().rank_batch([c for _, c in pairs], rf)
        for a, b in zip(tuple_results, columnar_results):
            assert_same_result(a, b)

    def test_degenerate_relations(self):
        rf = PRFe(0.9)
        for pairs in ([], [(5.0, 0.0), (4.0, 1.0), (3.0, 0.0)]):
            tuple_form = ProbabilisticRelation.from_pairs(pairs)
            columnar_form = ColumnarRelation(
                [score for score, _ in pairs], [p for _, p in pairs]
            )
            assert_same_result(Engine().rank(tuple_form, rf), Engine().rank(columnar_form, rf))

    def test_module_level_rank_accepts_columnar(self, rng):
        tuple_form, columnar_form = make_pair(15, rng)
        assert_same_result(rank(tuple_form, PRFe(0.8)), rank(columnar_form, PRFe(0.8)))

    def test_correlated_dispatch_unaffected(self, rng):
        """and/xor and Markov datasets still rank exactly as before."""
        tuple_form, columnar_form = make_pair(6, rng)
        tree = AndXorTree.from_independent(tuple_form)
        network = MarkovNetworkRelation.from_independent(tuple_form)
        rf = PRFOmega(StepWeight(3))
        engine = Engine()
        expected = engine.rank(columnar_form, rf).tids()
        assert engine.rank(tree, rf).tids() == expected
        assert engine.rank(network, rf).tids() == expected
        assert engine.plan(columnar_form, rf).model == "independent"
        assert engine.plan(tree, rf).model == "andxor"
        assert engine.plan(network, rf).model == "markov"


class TestColumnarResult:
    def test_result_is_columnar_backed(self, rng):
        _, columnar_form = make_pair(20, rng)
        result = Engine().rank(columnar_form, PRFe(0.9))
        assert isinstance(result, ColumnarRankingResult)

    def test_container_semantics_match_eager_result(self, rng):
        tuple_form, columnar_form = make_pair(20, rng)
        eager = Engine().rank(tuple_form, PRFe(0.9))
        lazy = Engine().rank(columnar_form, PRFe(0.9))
        assert len(lazy) == len(eager)
        assert lazy.tids() == eager.tids()
        assert lazy.top_k(5) == eager.top_k(5)
        assert [item.position for item in lazy] == [item.position for item in eager]
        assert [item.item for item in lazy] == [item.item for item in eager]
        assert lazy[3].item == eager[3].item
        for tid in lazy.tids():
            assert lazy.position_of(tid) == eager.position_of(tid)
            assert lazy.value_of(tid) == eager.value_of(tid)


class TestColumnarIO:
    def test_directory_round_trip_is_memory_mapped(self, rng, tmp_path):
        relation = generate_independent(5_000, rng=int(rng.integers(1 << 30)), columnar=True)
        directory = save_columnar(relation, tmp_path / "cols")
        loaded = load_columnar(directory)
        backing = loaded.scores() if loaded.scores().base is None else loaded.scores().base
        assert isinstance(backing, np.memmap)
        assert dataset_fingerprint(loaded) == dataset_fingerprint(relation)
        assert loaded.name == relation.name

    def test_npz_round_trip_with_explicit_tids(self, tmp_path):
        relation = ProbabilisticRelation(
            [Tuple("alpha", 9.0, 0.5), Tuple("beta", 5.0, 0.9)], name="named"
        )
        archive = save_columnar(relation, tmp_path / "rel.npz")
        loaded = load_columnar(archive)
        assert loaded.tid_values() == ["alpha", "beta"]
        assert loaded.name == "named"
        assert dataset_fingerprint(loaded) == dataset_fingerprint(relation)

    def test_save_columnar_rejects_attributes(self, tmp_path):
        relation = ProbabilisticRelation(
            [Tuple("t1", 1.0, 0.5, attributes={"source": "VIS"})]
        )
        with pytest.raises(ValueError):
            save_columnar(relation, tmp_path / "rel.npz")

    def test_csv_fast_path_returns_columnar(self, rng, tmp_path):
        relation = generate_independent(200, rng=int(rng.integers(1 << 30)))
        path = save_relation_csv(relation, tmp_path / "rel.csv")
        loaded = load_relation_csv(path)
        assert isinstance(loaded, ColumnarRelation)
        assert loaded.has_implicit_tids
        assert dataset_fingerprint(loaded) == dataset_fingerprint(relation)

    def test_csv_columnar_flag(self, rng, tmp_path):
        relation = generate_independent(50, rng=int(rng.integers(1 << 30)))
        path = save_relation_csv(relation, tmp_path / "rel.csv")
        forced_tuple = load_relation_csv(path, columnar=False)
        assert isinstance(forced_tuple, ProbabilisticRelation)
        assert dataset_fingerprint(forced_tuple) == dataset_fingerprint(relation)

    def test_csv_attributes_keep_tuple_path(self, tmp_path):
        relation = ProbabilisticRelation(
            [Tuple("t1", 1.0, 0.5, attributes={"source": "VIS"})]
        )
        path = save_relation_csv(relation, tmp_path / "rel.csv")
        loaded = load_relation_csv(path)
        assert isinstance(loaded, ProbabilisticRelation)
        assert loaded[0].attributes == {"source": "VIS"}
        with pytest.raises(ValueError):
            load_relation_csv(path, columnar=True)

    def test_ranking_memory_mapped_relation_is_bit_identical(self, rng, tmp_path):
        relation = generate_independent(
            1_000, rng=int(rng.integers(1 << 30)), columnar=True
        )
        loaded = load_columnar(save_columnar(relation, tmp_path / "cols"))
        assert_same_result(
            Engine().rank(relation, PRFe(0.95)), Engine().rank(loaded, PRFe(0.95))
        )

    def test_synthetic_columnar_matches_tuple_generator(self):
        columnar_form = generate_independent(300, rng=7, columnar=True)
        tuple_form = generate_independent(300, rng=7)
        assert isinstance(columnar_form, ColumnarRelation)
        assert dataset_fingerprint(columnar_form) == dataset_fingerprint(tuple_form)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=0,
        max_size=20,
    ),
    st.sampled_from([PRFe(0.9), PRFOmega([1.0, 0.5, 0.25]), PRF(NDCGDiscountWeight())]),
)
def test_property_columnar_equals_tuple(pairs, rf):
    """Any score/probability mix ranks identically in both storage forms."""
    scores = np.asarray([score for score, _ in pairs], dtype=float)
    probabilities = np.asarray([p for _, p in pairs], dtype=float)
    tuple_form = ProbabilisticRelation.from_arrays(scores, probabilities)
    columnar_form = ColumnarRelation(scores, probabilities)
    assert dataset_fingerprint(tuple_form) == dataset_fingerprint(columnar_form)
    assert_same_result(Engine().rank(tuple_form, rf), Engine().rank(columnar_form, rf))
