"""Chaos suite for the self-healing resilience layer.

The contracts under test, matching the acceptance criteria of the
resilience PR:

* **deadline propagation** — a ``deadline_ms`` budget rides the request
  from the wire into the coalescer and the pool, is shed at every hop
  with :class:`DeadlineExceededError` (error type ``"deadline"`` over
  TCP), and never costs an innocent worker a restart;
* **circuit breakers** — a deterministically slow shard trips its
  breaker open (fake-clock unit tests walk the whole
  closed → open → half-open → closed machine), the healthy shards' p99
  stays within 1.5x of a no-fault baseline, and hedged/degraded
  counters account for the affected traffic;
* **hedged requests** — a dispatch that misses the latency quantile is
  duplicated to a replica shard and the first reply wins;
* **live resizing** — an authenticated ``resize`` op shrinks/grows the
  pool under Poisson load with zero admitted requests lost, and the
  control plane rejects bad tokens without touching the pool;
* **bit-identity** — with degradation off, every reply equals a direct
  ``Engine.rank`` bit for bit, breakers and hedges notwithstanding;
  with degradation on, replies are tagged, counted, and never cached;
* the TCP client reconnects transparently across a connection reset and
  replays the (idempotent) in-flight request.

Everything runs on :class:`ThreadWorker` shards with seeded fault plans
and injected clocks — deterministic and CI-fast.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro import Engine, PRFe, ProbabilisticRelation
from repro.engine.cache import dataset_fingerprint
from repro.service import (
    BreakerConfig,
    CircuitBreaker,
    ControlAuthError,
    ControlPlane,
    DeadlineExceededError,
    DegradePolicy,
    Ewma,
    FaultPlan,
    HedgePolicy,
    LatencyWindow,
    PooledRankingService,
    RankingService,
    RemoteServiceError,
    ServiceOverloadedError,
    TCPRankingClient,
    ThreadWorker,
    WorkerPool,
    deadline_from_ms,
    render_metrics,
    serve_tcp,
)
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    median_or_none,
    remaining_seconds,
)
from repro.service.spec import ProtocolError


def run(coro):
    return asyncio.run(coro)


def make_relation(n: int, seed: int, name: str = "") -> ProbabilisticRelation:
    rng = np.random.default_rng(seed)
    return ProbabilisticRelation.from_arrays(
        rng.uniform(0.0, 1000.0, n), rng.uniform(0.0, 1.0, n), name=name or f"rel-{seed}"
    )


def thread_pool(shards: int = 2, **kwargs) -> WorkerPool:
    kwargs.setdefault("worker_factory", lambda shard: ThreadWorker(shard))
    kwargs.setdefault("retry_backoff", 0.001)
    return WorkerPool(shards, **kwargs)


def assert_bitwise_equal(result, reference, context=""):
    assert result.tids() == reference.tids(), context
    assert [item.value for item in result] == [item.value for item in reference], context


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Deadline helpers
# ----------------------------------------------------------------------
class TestDeadlineHelpers:
    def test_deadline_from_ms_is_absolute_monotonic(self):
        clock = FakeClock(50.0)
        assert deadline_from_ms(250.0, clock) == pytest.approx(50.25)

    def test_remaining_seconds(self):
        clock = FakeClock(10.0)
        assert remaining_seconds(None, clock) is None
        assert remaining_seconds(10.5, clock) == pytest.approx(0.5)
        clock.advance(1.0)
        assert remaining_seconds(10.5, clock) == pytest.approx(-0.5)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            deadline_from_ms(0.0)
        with pytest.raises(ValueError):
            deadline_from_ms(-5.0)


class TestEwma:
    def test_starts_empty_and_converges(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.value is None and ewma.count == 0
        ewma.observe(1.0)
        assert ewma.value == pytest.approx(1.0)
        for _ in range(20):
            ewma.observe(3.0)
        assert ewma.value == pytest.approx(3.0, rel=1e-3)
        assert ewma.count == 21

    def test_reset(self):
        ewma = Ewma()
        ewma.observe(1.0)
        ewma.reset()
        assert ewma.value is None and ewma.count == 0

    def test_median_or_none(self):
        assert median_or_none([]) is None
        assert median_or_none([3.0, 1.0, 2.0]) == pytest.approx(2.0)
        assert median_or_none([4.0, 1.0]) == pytest.approx(2.5)


# ----------------------------------------------------------------------
# Circuit breaker state machine (fake clock)
# ----------------------------------------------------------------------
def make_breaker(clock: FakeClock, **overrides) -> CircuitBreaker:
    defaults = dict(
        alpha=0.5,
        error_threshold=0.5,
        latency_factor=4.0,
        min_observations=4,
        open_duration=1.0,
        half_open_trials=2,
        trial_weight=0.1,
        demotion_floor=0.1,
    )
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults), clock=clock)


class TestCircuitBreaker:
    def test_error_rate_trips_open(self):
        breaker = make_breaker(FakeClock())
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 1
        assert breaker.last_reason == "error"
        assert breaker.route_weight() == 0.0

    def test_cold_shard_never_trips_under_min_observations(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.route_weight() == 1.0

    def test_persistent_slowness_trips_open(self):
        breaker = make_breaker(FakeClock())
        for _ in range(4):
            breaker.record_success(1.0, reference=0.01)
        assert breaker.state == BREAKER_OPEN
        assert breaker.last_reason == "slow"

    def test_open_walks_to_half_open_then_closes_on_trials(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.advance(1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.route_weight() == pytest.approx(0.1)
        breaker.record_success(0.01, reference=0.01)
        breaker.record_success(0.01, reference=0.01)
        assert breaker.state == BREAKER_CLOSED
        # Closing resets the EWMAs: the old failure storm is forgotten.
        assert breaker.observations == 0
        assert breaker.route_weight() == 1.0

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2

    def test_half_open_slow_trial_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_success(1.0, reference=0.01)
        clock.advance(1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success(1.0, reference=0.01)
        assert breaker.state == BREAKER_OPEN

    def test_half_open_trial_budget_bounds_admission(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.route_weight() == pytest.approx(0.1)
        breaker.on_dispatch()
        breaker.on_dispatch()
        # Trial budget (2) exhausted: no more traffic until an outcome.
        assert breaker.route_weight() == 0.0

    def test_latency_demotion_scales_weight_with_floor(self):
        breaker = make_breaker(FakeClock(), latency_factor=100.0)
        for _ in range(8):
            breaker.record_success(0.02, reference=0.01)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.route_weight(reference=0.01) == pytest.approx(0.5, rel=0.05)
        assert breaker.route_weight(reference=0.0004) == pytest.approx(0.1)
        assert breaker.route_weight(reference=0.05) == 1.0

    def test_weight_is_one_without_reference(self):
        breaker = make_breaker(FakeClock())
        breaker.record_success(5.0)
        assert breaker.route_weight() == 1.0


class TestLatencyWindowAndHedge:
    def test_window_quantiles(self):
        window = LatencyWindow(size=16)
        assert window.quantile(0.5) is None
        for sample in range(1, 11):
            window.observe(sample / 100.0)
        assert window.quantile(0.0) == pytest.approx(0.01)
        assert window.quantile(1.0) == pytest.approx(0.10)
        assert window.quantile(0.5) >= window.quantile(0.25)

    def test_hedge_delay_needs_samples_and_clamps(self):
        policy = HedgePolicy(quantile=0.95, min_samples=4, min_delay=0.01, max_delay=0.1)
        window = LatencyWindow()
        assert policy.delay(window) is None
        for _ in range(4):
            window.observe(0.0001)
        assert policy.delay(window) == pytest.approx(0.01)  # clamped up
        for _ in range(64):
            window.observe(10.0)
        assert policy.delay(window) == pytest.approx(0.1)  # clamped down


class TestDegradePolicy:
    def test_activates_on_pending_fraction(self):
        policy = DegradePolicy(approx=1e-3, pending_fraction=0.5, on_open_breaker=False)
        assert not policy.active(4, 10, open_breakers=0)
        assert policy.active(5, 10, open_breakers=0)

    def test_activates_on_open_breaker(self):
        policy = DegradePolicy(approx=1e-3, pending_fraction=1.1, on_open_breaker=True)
        assert not policy.active(0, 10, open_breakers=0)
        assert policy.active(0, 10, open_breakers=1)


# ----------------------------------------------------------------------
# Deadline propagation through the serving stack
# ----------------------------------------------------------------------
class TestDeadlinePropagation:
    def test_expired_deadline_sheds_before_execution(self):
        rel = make_relation(30, 40)

        async def scenario():
            async with RankingService(max_delay=0.005) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.submit(rel, PRFe(0.9), deadline_ms=0.001)
                return service.stats_snapshot()

        snapshot = run(scenario())
        assert snapshot["deadline_shed"] == 1
        assert snapshot["pending"] == 0

    def test_deadline_shed_is_an_overload_subclass(self):
        assert issubclass(DeadlineExceededError, ServiceOverloadedError)

    def test_generous_deadline_succeeds_pooled(self):
        rel = make_relation(30, 41)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                reply = await service.submit(
                    rel, PRFe(0.9), name=rel.name, deadline_ms=30_000.0
                )
                return reply, service.stats_snapshot()

        reply, snapshot = run(scenario())
        assert_bitwise_equal(reply.result, expected)
        assert not reply.degraded
        assert snapshot["deadline_shed"] == 0

    def test_expired_deadline_sheds_pooled_and_counts(self):
        rel = make_relation(30, 42)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.005) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.submit(rel, PRFe(0.9), deadline_ms=0.001)
                return service.stats_snapshot()

        snapshot = run(scenario())
        assert snapshot["deadline_shed"] >= 1
        assert snapshot["pending"] == 0

    def test_deadline_error_type_over_tcp(self):
        rel = make_relation(25, 43)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.005) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RemoteServiceError) as excinfo:
                        await client.rank(rel, PRFe(0.9), deadline_ms=0.001)
                    ranking = await client.rank(rel, PRFe(0.9), deadline_ms=30_000.0)
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return excinfo.value, ranking

        error, ranking = run(scenario())
        assert error.kind == "deadline"
        expected = Engine().rank(rel, PRFe(0.9))
        assert [tid for tid, _ in ranking] == expected.tids()

    def test_wire_rejects_garbage_deadline(self):
        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.005) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RemoteServiceError) as excinfo:
                        await client.rank(make_relation(10, 44), PRFe(0.9), deadline_ms=-5)
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return excinfo.value

        assert run(scenario()).kind == "protocol"


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_duplicates_to_replica_and_backup_wins(self):
        rel = make_relation(40, 50)
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            fingerprint = dataset_fingerprint(rel)
            probe_pool = thread_pool(2)
            slow_shard = probe_pool.route(fingerprint)
            plan = FaultPlan(slow={slow_shard: 0.5})
            pool = thread_pool(
                2,
                fault_plan=plan,
                hedge=HedgePolicy(
                    quantile=0.5, min_samples=4, min_delay=0.001, max_delay=0.02
                ),
            )
            for _ in range(8):
                pool.latencies.observe(0.002)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                started = time.perf_counter()
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                elapsed = time.perf_counter() - started
                return reply, elapsed, pool.snapshot()

        reply, elapsed, snapshot = run(scenario())
        assert_bitwise_equal(reply.result, expected)
        assert snapshot["hedges_fired"] >= 1
        assert snapshot["hedges_won"] >= 1
        # The backup answered while the primary was stuck in its 500ms skew.
        assert elapsed < 0.45

    def test_no_hedge_on_single_shard_pool(self):
        rel = make_relation(30, 51)

        async def scenario():
            pool = thread_pool(
                1, hedge=HedgePolicy(quantile=0.5, min_samples=1, min_delay=0.001)
            )
            for _ in range(4):
                pool.latencies.observe(0.001)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                await service.submit(rel, PRFe(0.9), name=rel.name)
                return pool.snapshot()

        snapshot = run(scenario())
        assert snapshot["hedges_fired"] == 0


# ----------------------------------------------------------------------
# Acceptance (a): slow shard trips its breaker; healthy p99 holds
# ----------------------------------------------------------------------
class TestSlowShardIsolation:
    BREAKER = BreakerConfig(
        alpha=0.5,
        error_threshold=0.5,
        latency_factor=3.0,
        min_observations=3,
        open_duration=0.5,
        half_open_trials=2,
    )

    @staticmethod
    async def drive(pool, relations, waves: int = 8, settle: float = 0.0):
        """Fire ``waves`` rounds of every relation; per-request latencies.

        ``settle`` waits before the final snapshot so hedge losers (which
        finish detached and feed the breakers their true latency) land.
        """
        latencies: dict[str, list[float]] = {rel.name: [] for rel in relations}
        async with PooledRankingService(pool, max_delay=0.001, cache_ttl=0.0) as service:

            async def one(rel):
                started = time.perf_counter()
                reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                latencies[rel.name].append(time.perf_counter() - started)
                return reply

            for _ in range(waves):
                await asyncio.gather(*(one(rel) for rel in relations))
            if settle:
                await asyncio.sleep(settle)
            snapshot = pool.snapshot()
        return latencies, snapshot

    def test_breaker_trips_and_healthy_p99_within_budget(self):
        shards = 3
        relations = [make_relation(30, seed, name=f"iso-{seed}") for seed in range(60, 72)]
        router_probe = thread_pool(shards)
        slow_shard = router_probe.route(dataset_fingerprint(relations[0]))
        healthy = [
            rel
            for rel in relations
            if router_probe.route(dataset_fingerprint(rel)) != slow_shard
        ]
        assert healthy, "fixture must include traffic for healthy shards"

        async def baseline():
            pool = thread_pool(shards, breaker=self.BREAKER)
            return await self.drive(pool, relations)

        async def chaos():
            plan = FaultPlan(slow={slow_shard: 0.3})
            pool = thread_pool(
                shards,
                breaker=self.BREAKER,
                fault_plan=plan,
                hedge=HedgePolicy(
                    quantile=0.5, min_samples=4, min_delay=0.001, max_delay=0.02
                ),
            )
            for _ in range(8):
                pool.latencies.observe(0.002)
            return await self.drive(pool, relations, settle=0.8)

        base_lat, _ = run(baseline())
        chaos_lat, snapshot = run(chaos())

        def p99(samples: list[float]) -> float:
            ordered = sorted(samples)
            return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

        base_healthy = [s for rel in healthy for s in base_lat[rel.name]]
        chaos_healthy = [s for rel in healthy for s in chaos_lat[rel.name]]
        # The slow shard tripped its breaker...
        assert snapshot["breakers"]["opens"][slow_shard] >= 1
        # ...affected traffic is accounted by the hedge counters...
        assert snapshot["hedges_fired"] >= 1
        # ...and healthy-shard tail latency stayed within 1.5x of the
        # no-fault baseline (50ms absolute slack, far below the 300ms skew).
        assert p99(chaos_healthy) <= 1.5 * p99(base_healthy) + 0.05, (
            p99(chaos_healthy),
            p99(base_healthy),
        )

    def test_open_breaker_demotes_shard_in_route_weights(self):
        async def scenario():
            pool = thread_pool(3, breaker=self.BREAKER)
            pool.start()
            try:
                assert pool.route_weights() is None  # healthy: exact integer path
                assert pool.breakers is not None
                for _ in range(4):
                    pool.breakers[1].record_failure()
                weights = pool.route_weights()
                assert weights is not None
                assert weights[1] == 0.0
                assert weights[0] > 0.0 and weights[2] > 0.0
                assert pool.open_breakers() == 1
            finally:
                pool.close()

        run(scenario())


# ----------------------------------------------------------------------
# Acceptance (b): live resize under Poisson load loses nothing
# ----------------------------------------------------------------------
class TestLiveResize:
    def test_resize_under_poisson_load_loses_zero_admitted_requests(self):
        shards, total, rate = 4, 240, 500.0
        relations = [make_relation(25, seed, name=f"rz-{seed}") for seed in range(80, 92)]
        reference = {
            rel.name: Engine().rank(rel, PRFe(0.9), name=rel.name) for rel in relations
        }
        rng = np.random.default_rng(123)
        offsets = np.cumsum(rng.exponential(1.0 / rate, size=total))

        async def scenario():
            pool = thread_pool(shards, breaker=BreakerConfig())
            ok = shed = 0
            async with PooledRankingService(
                pool, max_delay=0.001, max_pending=4096, cache_ttl=0.0
            ) as service:
                start = time.perf_counter()

                async def fire(index: int, offset: float):
                    delay = start + offset - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    rel = relations[index % len(relations)]
                    try:
                        reply = await service.submit(rel, PRFe(0.9), name=rel.name)
                    except ServiceOverloadedError:
                        return ("shed", None, rel.name)
                    return ("ok", reply, rel.name)

                async def director():
                    await asyncio.sleep(float(offsets[-1]) * 0.35)
                    first = await service.resize(2)
                    await asyncio.sleep(float(offsets[-1]) * 0.3)
                    second = await service.resize(shards)
                    return first, second

                resize_task = asyncio.get_running_loop().create_task(director())
                outcomes = await asyncio.gather(
                    *(fire(index, float(off)) for index, off in enumerate(offsets))
                )
                events = await resize_task
                pending = service.pending()
                snapshot = pool.snapshot()
            for outcome, reply, name in outcomes:
                if outcome == "ok":
                    ok += 1
                    assert_bitwise_equal(reply.result, reference[name], name)
                else:
                    shed += 1
            return ok, shed, pending, snapshot, events

        ok, shed, pending, snapshot, events = run(scenario())
        assert ok + shed == 240
        assert ok > 0
        assert pending == 0
        assert snapshot["resizes_total"] == 2
        assert snapshot["shards"] == 4
        assert all(snapshot["alive"])
        assert events[0]["from"] == 4 and events[0]["to"] == 2
        assert events[1]["from"] == 2 and events[1]["to"] == 4

    def test_same_size_resize_is_a_noop(self):
        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                event = await service.resize(2)
                return event, pool.snapshot()

        event, snapshot = run(scenario())
        assert event["changed"] is False
        assert snapshot["resizes_total"] == 0


# ----------------------------------------------------------------------
# Control plane: authenticated resize over TCP
# ----------------------------------------------------------------------
class TestControlPlane:
    def test_authorize_rejects_when_disabled_or_bad_token(self):
        disabled = ControlPlane(None)
        with pytest.raises(ControlAuthError):
            disabled.authorize({"token": "anything"})
        plane = ControlPlane("secret")
        with pytest.raises(ControlAuthError):
            plane.authorize({})
        with pytest.raises(ControlAuthError):
            plane.authorize({"token": "wrong"})
        plane.authorize({"token": "secret"})  # does not raise

    def test_resize_validates_target(self):
        plane = ControlPlane("secret", min_shards=1, max_shards=8)

        async def attempt(message):
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                return await plane.resize(service, message)

        with pytest.raises(ProtocolError):
            run(attempt({"token": "secret", "shards": "three"}))
        with pytest.raises(ProtocolError):
            run(attempt({"token": "secret", "shards": True}))
        with pytest.raises(ProtocolError):
            run(attempt({"token": "secret", "shards": 0}))
        with pytest.raises(ProtocolError):
            run(attempt({"token": "secret", "shards": 9}))

    def test_resize_rejects_unpooled_service(self):
        plane = ControlPlane("secret")

        async def attempt():
            async with RankingService(max_delay=0.001) as service:
                return await plane.resize(service, {"token": "secret", "shards": 2})

        with pytest.raises(ProtocolError):
            run(attempt())

    def test_resize_over_tcp_requires_token(self):
        async def scenario():
            pool = thread_pool(2)
            control = ControlPlane("hunter2", max_shards=8)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                server = await serve_tcp(service, "127.0.0.1", 0, control=control)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RemoteServiceError) as bad:
                        await client.resize(3, token="wrong")
                    event = await client.resize(3, token="hunter2")
                    shards_after = pool.snapshot()["shards"]
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return bad.value, event, shards_after

        error, event, shards_after = run(scenario())
        assert error.kind == "unauthorized"
        assert event["from"] == 2 and event["to"] == 3
        assert shards_after == 3

    def test_resize_over_tcp_disabled_without_control_plane(self):
        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RemoteServiceError) as excinfo:
                        await client.resize(3, token="anything")
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return excinfo.value

        assert run(scenario()).kind == "unauthorized"


# ----------------------------------------------------------------------
# Acceptance (c): bit-identity with degradation off; tagging when on
# ----------------------------------------------------------------------
class TestDegradation:
    def test_replies_bit_identical_with_resilience_on_and_degradation_off(self):
        relations = [make_relation(20 + seed, seed, name=f"bi-{seed}") for seed in range(95, 103)]
        reference = {
            rel.name: Engine().rank(rel, PRFe(0.9), name=rel.name) for rel in relations
        }

        async def scenario():
            slow_shard = 0
            pool = thread_pool(
                3,
                breaker=BreakerConfig(min_observations=3, open_duration=0.3),
                fault_plan=FaultPlan(slow={slow_shard: 0.1}),
                hedge=HedgePolicy(quantile=0.5, min_samples=4, min_delay=0.001, max_delay=0.02),
            )
            for _ in range(8):
                pool.latencies.observe(0.002)
            replies = []
            async with PooledRankingService(pool, max_delay=0.001, cache_ttl=0.0) as service:
                for _ in range(3):
                    for rel in relations:
                        replies.append((rel.name, await service.submit(rel, PRFe(0.9), name=rel.name)))
            return replies

        for name, reply in run(scenario()):
            assert not reply.degraded
            assert_bitwise_equal(reply.result, reference[name], name)

    def test_degraded_replies_are_tagged_counted_and_never_cached(self):
        rel = make_relation(200, 105, name="degrade-me")

        async def scenario():
            pool = thread_pool(2)
            degrade = DegradePolicy(approx=1e-3, pending_fraction=0.0, on_open_breaker=True)
            async with PooledRankingService(
                pool, max_delay=0.001, cache_ttl=60.0, degrade=degrade
            ) as service:
                first = await service.submit(rel, PRFe(0.9), name=rel.name)
                second = await service.submit(rel, PRFe(0.9), name=rel.name)
                explicit = await service.submit(
                    rel, PRFe(0.9), name=rel.name, approx=1e-6
                )
                return first, second, explicit, service.stats_snapshot()

        first, second, explicit, snapshot = run(scenario())
        assert first.degraded and second.degraded
        # A request that chose its own approx budget is not "degraded".
        assert not explicit.degraded
        assert snapshot["degraded"] == 2
        # Degraded replies must never serve later exact requests.
        assert snapshot["cache_hits"] == 0

    def test_degraded_flag_rideses_the_wire(self):
        rel = make_relation(150, 106, name="wire-degrade")

        async def scenario():
            pool = thread_pool(2)
            degrade = DegradePolicy(approx=1e-3, pending_fraction=0.0)
            async with PooledRankingService(
                pool, max_delay=0.001, degrade=degrade
            ) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    detailed = await client.rank_detailed(rel, PRFe(0.9))
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return detailed

        detailed = run(scenario())
        assert detailed["degraded"] is True


# ----------------------------------------------------------------------
# TCP client transparent reconnect
# ----------------------------------------------------------------------
class TestClientReconnect:
    def test_client_survives_a_server_restart(self):
        rel = make_relation(30, 110, name="reconnect")
        expected = Engine().rank(rel, PRFe(0.9), name=rel.name)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    before = await client.rank(rel, PRFe(0.9), name=rel.name)
                    # Hard restart: every connection dies, same endpoint.
                    server.close()
                    await server.wait_closed()
                    server = await serve_tcp(service, "127.0.0.1", port)
                    after = await client.rank(rel, PRFe(0.9), name=rel.name)
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return before, after

        before, after = run(scenario())
        assert [tid for tid, _ in before] == expected.tids()
        assert after == before

    def test_server_side_errors_are_not_retried(self):
        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RemoteServiceError):
                        await client.rank("no-such-dataset", PRFe(0.9))
                    # The connection is still healthy afterwards.
                    rel = make_relation(10, 111)
                    ranking = await client.rank(rel, PRFe(0.9))
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return ranking

        assert run(scenario())

    def test_close_disables_reconnect(self):
        rel = make_relation(10, 112)

        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await TCPRankingClient.connect("127.0.0.1", port)
                await client.close()
                with pytest.raises(ConnectionError):
                    await client.rank(rel, PRFe(0.9))
                server.close()
                await server.wait_closed()

        run(scenario())


# ----------------------------------------------------------------------
# Metrics: the new resilience families render
# ----------------------------------------------------------------------
class TestResilienceMetrics:
    def test_breaker_hedge_resize_and_deadline_families_render(self):
        rel = make_relation(20, 120, name="metrics")

        async def scenario():
            pool = thread_pool(2, breaker=BreakerConfig())
            async with PooledRankingService(pool, max_delay=0.001) as service:
                await service.submit(rel, PRFe(0.9), name=rel.name)
                await service.resize(3)
                with pytest.raises(DeadlineExceededError):
                    await service.submit(rel, PRFe(0.9), deadline_ms=0.001)
                return render_metrics(service.stats_snapshot())

        text = run(scenario())
        assert 'repro_pool_breaker_state{shard="0"} 0' in text
        assert 'repro_pool_breaker_opens_total{shard="2"} 0' in text
        assert "repro_pool_resizes_total 1" in text
        assert "repro_pool_hedges_fired_total 0" in text
        assert "repro_pool_hedges_won_total 0" in text
        assert "repro_service_deadline_shed_total 1" in text
        assert "repro_service_degraded_total 0" in text
        families = [
            line.split()[2] for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(families) == len(set(families))

    def test_breaker_families_absent_without_breakers(self):
        async def scenario():
            pool = thread_pool(2)
            async with PooledRankingService(pool, max_delay=0.001) as service:
                return render_metrics(service.stats_snapshot())

        text = run(scenario())
        assert "repro_pool_breaker_state" not in text
