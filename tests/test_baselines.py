"""Tests for the baseline ranking functions (E-Score, E-Rank, PT(h), U-Rank, k-selection)."""

import math

import pytest

from repro import PRFLinear, ProbabilisticRelation, rank
from repro.baselines import (
    expected_best_score,
    expected_rank_ranking,
    expected_rank_values,
    expected_score_ranking,
    expected_score_topk,
    expected_score_values,
    global_topk,
    greedy_k_selection,
    k_selection,
    k_selection_ranking,
    pt_ranking,
    pt_topk,
    pt_values,
    u_rank_assignment,
    u_rank_topk,
)
from repro.core.possible_worlds import enumerate_worlds
from tests.conftest import random_relation, random_small_tree


@pytest.fixture
def relation():
    return ProbabilisticRelation.from_pairs(
        [(10, 0.3), (9, 0.9), (8, 0.5), (7, 0.8), (6, 0.2)]
    )


class TestExpectedScore:
    def test_values(self, relation):
        values = expected_score_values(relation)
        assert values["t1"] == pytest.approx(3.0)
        assert values["t2"] == pytest.approx(8.1)

    def test_topk_order(self, relation):
        assert expected_score_topk(relation, 2) == ["t2", "t4"]

    def test_invariant_to_correlations(self, figure1_tree):
        tree_ranking = expected_score_ranking(figure1_tree).tids()
        flat_ranking = expected_score_ranking(figure1_tree.to_relation()).tids()
        assert tree_ranking == flat_ranking


class TestExpectedRank:
    def test_matches_enumeration_independent(self, rng):
        relation = random_relation(7, rng)
        worlds = enumerate_worlds(relation)
        values = expected_rank_values(relation)
        for t in relation:
            exact = sum(
                w.probability * (w.rank_of(t.tid) if t.tid in w else len(w))
                for w in worlds
            )
            assert values[t.tid] == pytest.approx(exact, abs=1e-9), t.tid

    def test_matches_enumeration_tree(self, rng):
        tree = random_small_tree(rng, num_leaves=7)
        worlds = tree.enumerate_worlds()
        values = expected_rank_values(tree)
        for t in tree.tuples():
            exact = sum(
                w.probability * (w.rank_of(t.tid) if t.tid in w else len(w))
                for w in worlds
            )
            assert values[t.tid] == pytest.approx(exact, abs=1e-9), t.tid

    def test_ranking_is_increasing_in_expected_rank(self, relation):
        result = expected_rank_ranking(relation)
        values = expected_rank_values(relation)
        ordered_values = [values[tid] for tid in result.tids()]
        assert ordered_values == sorted(ordered_values)

    def test_er1_equals_negated_prf_linear(self, rng):
        """The decomposition of Section 3.3: er1(t) = -PRF_l(t)."""
        relation = random_relation(6, rng)
        worlds = enumerate_worlds(relation)
        prfl = rank(relation, PRFLinear())
        for t in relation:
            er1 = sum(
                w.probability * w.rank_of(t.tid) for w in worlds if t.tid in w
            )
            assert -prfl.value_of(t.tid) == pytest.approx(er1, abs=1e-9)


class TestPTTopk:
    def test_pt_values_are_prefix_sums(self, relation):
        from repro.algorithms.independent import positional_probabilities

        values = pt_values(relation, 2)
        ordered, matrix = positional_probabilities(relation, max_rank=2)
        for i, t in enumerate(ordered):
            assert values[t.tid] == pytest.approx(matrix[i].sum())

    def test_pt_h_one_equals_top1_probability(self, relation):
        values = pt_values(relation, 1)
        # Highest-score tuple: Pr(rank 1) is just its probability.
        assert values["t1"] == pytest.approx(0.3)

    def test_pt_ranking_monotone_in_h(self, relation):
        # With h = n every tuple's value equals its probability.
        values = pt_values(relation, len(relation))
        for t in relation:
            assert values[t.tid] == pytest.approx(t.probability)

    def test_global_topk_is_pt_with_h_equal_k(self, relation):
        assert global_topk(relation, 3) == pt_topk(relation, 3, h=3)

    def test_pt_on_tree_matches_enumeration(self, figure1_tree):
        worlds = figure1_tree.enumerate_worlds()
        values = pt_values(figure1_tree, 2)
        for t in figure1_tree.tuples():
            exact = sum(w.probability for w in worlds if w.rank_of(t.tid) <= 2)
            assert values[t.tid] == pytest.approx(exact, abs=1e-9)

    def test_invalid_h(self, relation):
        with pytest.raises(ValueError):
            pt_values(relation, 0)
        with pytest.raises(ValueError):
            pt_ranking(relation, 0)


class TestURank:
    def test_assignment_probabilities_match_enumeration(self, relation):
        worlds = enumerate_worlds(relation)
        assignment = u_rank_assignment(relation, 3, distinct=False)
        for position, (tid, probability) in enumerate(assignment, start=1):
            best = max(
                (
                    sum(w.probability for w in worlds if w.rank_of(t.tid) == position)
                    for t in relation
                ),
            )
            assert probability == pytest.approx(best, abs=1e-9)

    def test_distinct_mode_has_no_duplicates(self, rng):
        relation = random_relation(12, rng)
        answer = u_rank_topk(relation, 8)
        assert len(answer) == len(set(answer)) == 8

    def test_non_distinct_mode_can_repeat(self):
        relation = ProbabilisticRelation.from_pairs([(10, 0.99), (9, 0.1), (8, 0.1)])
        answer = u_rank_topk(relation, 2, distinct=False)
        assert answer[0] == "t1"

    def test_k_validation(self, relation):
        with pytest.raises(ValueError):
            u_rank_topk(relation, 0)

    def test_works_on_trees(self, figure1_tree):
        answer = u_rank_topk(figure1_tree, 3)
        assert len(answer) == 3
        assert set(answer) <= {t.tid for t in figure1_tree.tuples()}


class TestKSelection:
    def test_ranking_values(self, relation):
        result = k_selection_ranking(relation)
        # Highest-score tuple: value = score * probability of being top-1.
        assert result.value_of("t1") == pytest.approx(10 * 0.3)

    def test_k_selection_subset_size(self, relation):
        assert len(k_selection(relation, 3)) == 3

    def test_expected_best_score_manual(self, relation):
        # S = {t1, t2}: E[max] = 10*0.3 + 9*0.9*0.7
        assert expected_best_score(relation, ["t1", "t2"]) == pytest.approx(
            10 * 0.3 + 9 * 0.9 * 0.7
        )

    def test_greedy_matches_bruteforce_on_small_inputs(self, rng):
        relation = random_relation(6, rng)
        import itertools

        best = max(
            (expected_best_score(relation, subset), subset)
            for subset in itertools.combinations([t.tid for t in relation], 2)
        )[0]
        greedy = expected_best_score(relation, greedy_k_selection(relation, 2))
        assert greedy >= (1 - 1 / math.e) * best - 1e-9

    def test_greedy_k_validation(self, relation):
        with pytest.raises(ValueError):
            greedy_k_selection(relation, -1)
