"""Setuptools shim so ``pip install -e .`` works without the wheel package.

All project metadata lives in ``pyproject.toml``; this file only exists to
enable the legacy editable-install path on minimal/offline environments.
"""

from setuptools import setup

setup()
